"""The replication record stream: format, integrity, digests.

A send is a sequence of plain-dict records (JSON-shaped, payloads as
``bytes``) so repro artifacts and tests can inspect them directly:

``header``
    Stream identity and geometry: stream id, base/target names and
    epochs, block size, totals, and how much a resumed stream already
    acknowledged.  Self-describing: a receiver needs nothing but the
    stream itself (plus its cursor, when resuming).
``extent``
    One changed block: (lba, seq, payload).  ``seq`` is the winning
    packet's sequence number — the multi-version lookup's proof of
    *which* version this is.  Extents arrive grouped per source
    segment in allocation-seq order.
``remove``
    One block the receiver must trim (deleted between base and
    target).
``cursor``
    A watermark: everything before it may be durably acknowledged.
    The driver commits the receiver's cursor to the durable store when
    one passes (crash site ``send.cursor_commit``).
``end``
    Totals for the whole *logical* stream (acknowledged + sent).  No
    stream is complete without one.

Integrity is two-layered.  Each record carries a CRC32 over its
canonical form (payload folded in by its own CRC) — wire corruption is
detected record-by-record.  Content is guarded by an order-independent
digest: each extent folds ``mix64(lba, crc32(payload))`` and each
remove ``mix64(lba)`` into a 64-bit sum.  Order independence matters
because a resumed send may emit the surviving records in a different
segment order (the cleaner may have relocated winners between
incarnations) while the logical content is identical; a commutative
fold makes the digest a property of the *set*, and the cursor carries
the partial sums so the total accumulates exactly once across
incarnations.
"""

from __future__ import annotations

import zlib
from typing import Any, Dict, Optional

from repro.errors import ReplicationError

STREAM_VERSION = 1
_MASK64 = (1 << 64) - 1

KIND_HEADER = "header"
KIND_EXTENT = "extent"
KIND_REMOVE = "remove"
KIND_CURSOR = "cursor"
KIND_END = "end"

# Domain-separation salts so an extent of LBA x can never collide with
# a remove of LBA x in the digest sum.
_EXTENT_SALT = 0x5EED0E75
_REMOVE_SALT = 0x0DE1E7ED


def mix64(*values: int) -> int:
    """Deterministic splitmix64-style hash (same idiom as repro.faults)."""
    acc = 0x9E3779B97F4A7C15
    for value in values:
        acc = (acc ^ (value & _MASK64)) * 0xBF58476D1CE4E5B9 & _MASK64
        acc = (acc ^ (acc >> 27)) * 0x94D049BB133111EB & _MASK64
        acc ^= acc >> 31
    return acc


def payload_crc(payload: bytes) -> int:
    return zlib.crc32(payload) & 0xFFFFFFFF


def content_digest(lba: int, crc: int) -> int:
    """Per-extent content digest: (lba, payload crc), deliberately
    seq-free so it is recomputable from an activation readback — the
    receiver's finalize re-derives the sum by *reading the snapshot it
    just built* and compares against the accumulated stream value."""
    return mix64(_EXTENT_SALT, lba, crc)


def remove_digest(lba: int) -> int:
    return mix64(_REMOVE_SALT, lba)


def fold_digest(acc: int, digest: int) -> int:
    """Commutative fold: a 64-bit sum over per-record digests."""
    return (acc + digest) & _MASK64


# ---------------------------------------------------------------------------
# Record construction / integrity
# ---------------------------------------------------------------------------
def _canonical(record: Dict[str, Any]) -> bytes:
    parts = []
    for key in sorted(record):
        if key == "crc":
            continue
        value = record[key]
        if isinstance(value, (bytes, bytearray)):
            value = f"crc32:{payload_crc(bytes(value))}"
        parts.append(f"{key}={value!r}")
    return ";".join(parts).encode()


def seal(record: Dict[str, Any]) -> Dict[str, Any]:
    """Stamp the record's CRC; returns the record for chaining."""
    record["crc"] = zlib.crc32(_canonical(record)) & 0xFFFFFFFF
    return record


def check_record(record: Any) -> Dict[str, Any]:
    """Validate one wire record; raises :class:`ReplicationError`."""
    if not isinstance(record, dict) or "kind" not in record:
        raise ReplicationError(f"malformed stream record: {record!r}")
    crc = record.get("crc")
    expect = zlib.crc32(_canonical(record)) & 0xFFFFFFFF
    if crc != expect:
        raise ReplicationError(
            f"record CRC mismatch on {record.get('kind')!r} record "
            f"n={record.get('n')} (got {crc}, computed {expect}): "
            "the transfer is corrupt and must restart from the last "
            "committed cursor")
    return record


def header_record(n: int, stream_id: str, base: Optional[str], target: str,
                  base_epoch: Optional[int], target_epoch: int,
                  block_size: int, num_lbas: int, mode: str,
                  extent_total: int, remove_total: int,
                  acked_extents: int, acked_removes: int) -> Dict[str, Any]:
    return seal({
        "kind": KIND_HEADER, "n": n, "version": STREAM_VERSION,
        "stream_id": stream_id, "base": base, "target": target,
        "base_epoch": base_epoch, "target_epoch": target_epoch,
        "block_size": block_size, "num_lbas": num_lbas, "mode": mode,
        "extent_total": extent_total, "remove_total": remove_total,
        "acked_extents": acked_extents, "acked_removes": acked_removes,
    })


def extent_record(n: int, lba: int, seq: int, segment_seq: int,
                  payload: bytes) -> Dict[str, Any]:
    return seal({
        "kind": KIND_EXTENT, "n": n, "lba": lba, "seq": seq,
        "segment_seq": segment_seq, "length": len(payload),
        "payload": payload,
    })


def remove_record(n: int, lba: int) -> Dict[str, Any]:
    return seal({"kind": KIND_REMOVE, "n": n, "lba": lba})


def cursor_record(n: int, extents_sent: int,
                  removes_sent: int) -> Dict[str, Any]:
    return seal({"kind": KIND_CURSOR, "n": n,
                 "extents_sent": extents_sent,
                 "removes_sent": removes_sent})


def end_record(n: int, extent_total: int, remove_total: int) -> Dict[str, Any]:
    return seal({"kind": KIND_END, "n": n,
                 "extent_total": extent_total,
                 "remove_total": remove_total})


def corrupted(record: Dict[str, Any]) -> Dict[str, Any]:
    """A corrupted *copy* of ``record`` (wire-fault injection for tests).

    Flips one payload byte when there is a payload (the CRC stays the
    sealed original, so the receiver's check must trip), otherwise
    flips a CRC bit.
    """
    broken = dict(record)
    payload = broken.get("payload")
    if isinstance(payload, (bytes, bytearray)) and len(payload) > 0:
        mutated = bytearray(payload)
        mutated[0] ^= 0xFF
        broken["payload"] = bytes(mutated)
    else:
        broken["crc"] = broken.get("crc", 0) ^ 1
    return broken

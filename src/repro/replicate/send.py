"""The sender half: plan the changed-block set, stream the records.

``send_proc`` computes the exact transfer set with the multi-version
changed-block lookup (:func:`repro.core.diff.changed_blocks_proc` —
per-epoch validity folded through the epoch-summary index), then reads
each winning packet and emits the record stream through ``emit``.

Consistency contract: the whole send runs under the device's scan
barrier (``begin_scan``/``end_scan``), the same contract activation
uses — the cleaner may keep *copying* blocks but must not *erase*
while the send is in flight, so every PPN the planner resolved stays
readable even if a copy-forward relocates it mid-transfer.  Foreground
writes continue unimpeded: they land in the active epoch, which is by
construction not on the frozen target path — the stream is a
consistent cut without stalling I/O.

Media faults during the send go through the device's normal read path:
ECC-correctable errors are absorbed by the retry ladder and yield the
corrected bytes — the stream digest cannot tell a corrected read from
a clean one.  An *uncorrectable* winner is recorded in the device's
damage manifest and aborts the send with a typed
:class:`~repro.errors.ReplicationError`; the stream stays resumable
from the last committed cursor, but this device genuinely cannot
produce that block.

Resume: pass the committed cursor; its acknowledged LBAs are
subtracted from the recomputed plan (sound because a snapshot's
winner *set* is frozen — only locations move) and the header announces
how much the logical stream already acknowledged.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, Generator, List, Optional, Tuple

from repro.core.diff import changed_blocks_proc
from repro.errors import ReplicationError, UncorrectableError
from repro.replicate import stream
from repro.replicate.cursor import ReplicationCursor

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.iosnap import IoSnapDevice


def make_stream_id(base: Optional[str], target: str) -> str:
    """Stable stream identity: resolved snapshot names, not refs."""
    return f"{base if base is not None else '<empty>'}=>{target}"


def _segment_groups(source: "IoSnapDevice",
                    winners: Dict[int, Tuple[int, int]],
                    lbas: List[int]) -> List[Tuple[int, int, int, int]]:
    """(segment_seq, ppn, lba, seq) for every block, in allocation order.

    Extents are grouped per source segment and segments stream in
    allocation-seq order — the order a log-structured reader is
    cheapest in, and the order the paper's log scan visits media.
    """
    rows = []
    for lba in lbas:
        seq, ppn = winners[lba]
        seg = source.log.segment_of(ppn)
        rows.append((seg.seq, ppn, lba, seq))
    rows.sort()
    return rows


def send_proc(source: "IoSnapDevice", base, target, emit, *,
              resume: Optional[ReplicationCursor] = None,
              cursor_every: int = 8, limiter=None) -> Generator:
    """Stream ``base -> target`` through ``emit``; returns a report.

    ``emit`` is a generator function taking one record; the driver
    (:mod:`repro.replicate.transfer`) points it at a receiver and
    handles cursor commits when cursor records pass through.
    """
    if cursor_every < 1:
        raise ReplicationError(f"cursor_every must be >= 1: {cursor_every}")
    base_snap = source.tree.resolve(base) if base is not None else None
    target_snap = source.tree.resolve(target)
    if target_snap.deleted:
        raise ReplicationError(
            f"cannot send deleted snapshot {target_snap.name!r}")
    base_name = base_snap.name if base_snap is not None else None
    stream_id = make_stream_id(base_name, target_snap.name)
    if resume is not None and resume.stream_id != stream_id:
        raise ReplicationError(
            f"resume cursor is for stream {resume.stream_id!r}, "
            f"not {stream_id!r}")

    started = source.kernel.now
    move_log = source.begin_scan()
    try:
        changes = yield from changed_blocks_proc(source, base, target,
                                                 limiter)
        acked_extents = (resume.acked_extent_lbas() if resume is not None
                         else set())
        acked_removes = (resume.acked_remove_lbas() if resume is not None
                         else set())
        copy_set = set(changes.copy)
        remove_set = set(changes.removed)
        if not (acked_extents <= copy_set and acked_removes <= remove_set):
            raise ReplicationError(
                f"resume cursor for {stream_id!r} acknowledges blocks "
                "outside the recomputed changed-block set; the cursor "
                "does not belong to this source state")
        todo_copy = [lba for lba in changes.copy if lba not in acked_extents]
        todo_remove = [lba for lba in changes.removed
                       if lba not in acked_removes]

        n = 0
        bytes_sent = 0
        sent_extents = 0
        sent_removes = 0
        since_cursor = 0

        def _next_n() -> int:
            nonlocal n
            n += 1
            return n

        yield from emit(stream.header_record(
            _next_n(), stream_id, base_name, target_snap.name,
            base_snap.epoch if base_snap is not None else None,
            target_snap.epoch, source.block_size, source.num_lbas,
            changes.mode, len(changes.copy), len(changes.removed),
            len(acked_extents), len(acked_removes)))

        for seg_seq, ppn, lba, seq in _segment_groups(source,
                                                      changes.winners,
                                                      todo_copy):
            try:
                record = yield from source.nand.read_page(ppn)
            except UncorrectableError as exc:
                source.record_media_loss(ppn, reason="replication-send")
                raise ReplicationError(
                    f"winner for lba {lba} (ppn {ppn}) is uncorrectable; "
                    f"send of {stream_id!r} aborted after "
                    f"{sent_extents} extents") from exc
            payload = source._payload(record)
            yield from emit(stream.extent_record(_next_n(), lba, seq,
                                                 seg_seq, payload))
            bytes_sent += len(payload)
            sent_extents += 1
            since_cursor += 1
            if since_cursor >= cursor_every:
                yield from emit(stream.cursor_record(
                    _next_n(), sent_extents, sent_removes))
                since_cursor = 0

        for lba in todo_remove:
            yield from emit(stream.remove_record(_next_n(), lba))
            sent_removes += 1
            since_cursor += 1
            if since_cursor >= cursor_every:
                yield from emit(stream.cursor_record(
                    _next_n(), sent_extents, sent_removes))
                since_cursor = 0

        if since_cursor:
            yield from emit(stream.cursor_record(
                _next_n(), sent_extents, sent_removes))
        yield from emit(stream.end_record(
            _next_n(), len(changes.copy), len(changes.removed)))
    finally:
        source.end_scan(move_log)

    return {
        "stream_id": stream_id,
        "base": base_name,
        "target": target_snap.name,
        "mode": changes.mode,
        "resumed": resume is not None,
        "extent_total": len(changes.copy),
        "remove_total": len(changes.removed),
        "extents_sent": sent_extents,
        "removes_sent": sent_removes,
        "bytes_sent": bytes_sent,
        "records_sent": n,
        "scan_ns": changes.scan_ns,
        "segments_skipped": changes.segments_skipped,
        "pages_scanned": changes.pages_scanned,
        "send_ns": source.kernel.now - started,
    }

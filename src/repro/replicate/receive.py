"""The receiver half: validate, apply, acknowledge, finalize, verify.

A :class:`Receiver` reconstructs the sent snapshot on a second
simulated device.  Extents are applied as durable foreground writes
and removes as trims (crash site ``recv.apply`` fires before each, and
the writes/trims carry their own phased sites below that), so a power
cut mid-apply leaves exactly the states the torture rig already knows
how to recover.

Acknowledgement semantics: applied records are *pending* until a
cursor record passes, at which point they fold into the receiver's
cursor (counts, acked-LBA runs, content digests) and the driver
commits that cursor to the durable store.  A crash between apply and
acknowledge re-sends those records — re-applying is idempotent — and
the digests count each logical record exactly once.

Finalize (crash site ``recv.finalize``) materializes the snapshot with
a real ``snapshot_create`` and then *verifies through the front door*:
it activates the snapshot it just created, re-reads every transferred
LBA through the activation path, recomputes the order-independent
content digest, and compares it to the sum accumulated from the wire.
Removed LBAs must come back unmapped.  A digest mismatch raises
:class:`~repro.errors.ReplicationError` — the snapshot name is only
trusted after the readback proves the device serves the sent bytes.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Dict, Generator, List, Optional

from repro.errors import ReplicationError, SnapshotError
from repro.replicate import stream
from repro.replicate.cursor import ReplicationCursor, runs_from_lbas
from repro.torture import sites

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.iosnap import IoSnapDevice

_RECV_APPLY_PRE = sites.RECV_APPLY + ":" + sites.PHASE_PRE
_RECV_FINALIZE_PRE = sites.RECV_FINALIZE + ":" + sites.PHASE_PRE


class Receiver:
    """Applies one replication stream to ``device``."""

    def __init__(self, device: "IoSnapDevice", stream_id: str,
                 base: Optional[str], target: str,
                 resume: Optional[ReplicationCursor] = None) -> None:
        self.device = device
        if resume is not None:
            if resume.stream_id != stream_id:
                raise ReplicationError(
                    f"cursor stream {resume.stream_id!r} does not match "
                    f"transfer {stream_id!r}")
            if resume.finalized:
                raise ReplicationError(
                    f"stream {stream_id!r} is already finalized")
            self.cursor = resume.copy()
        else:
            self.cursor = ReplicationCursor(stream_id=stream_id, base=base,
                                            target=target)
        self.resumed = resume is not None
        self.header: Optional[Dict[str, Any]] = None
        self.end: Optional[Dict[str, Any]] = None
        # Applied-but-not-yet-acknowledged records of this incarnation.
        self._pending_extents: List[int] = []
        self._pending_removes: List[int] = []
        self._pending_extent_digest = 0
        self._pending_remove_digest = 0

    # -- cursor ----------------------------------------------------------
    def state(self) -> ReplicationCursor:
        """A committable snapshot of the acknowledged watermark."""
        return self.cursor.copy()

    def _acknowledge(self) -> None:
        """Fold pending applies into the cursor (a cursor record passed)."""
        cur = self.cursor
        if self._pending_extents:
            cur.extents_acked += len(self._pending_extents)
            cur.extent_digest = stream.fold_digest(
                cur.extent_digest, self._pending_extent_digest)
            cur.acked_extents = runs_from_lbas(
                list(cur.acked_extent_lbas()) + self._pending_extents)
            self._pending_extents = []
            self._pending_extent_digest = 0
        if self._pending_removes:
            cur.removes_acked += len(self._pending_removes)
            cur.remove_digest = stream.fold_digest(
                cur.remove_digest, self._pending_remove_digest)
            cur.acked_removes = runs_from_lbas(
                list(cur.acked_remove_lbas()) + self._pending_removes)
            self._pending_removes = []
            self._pending_remove_digest = 0

    # -- record application ----------------------------------------------
    def apply_record_proc(self, record: Any) -> Generator:
        """Validate and apply one wire record."""
        record = stream.check_record(record)
        kind = record["kind"]
        if kind == stream.KIND_HEADER:
            self._accept_header(record)
        elif kind == stream.KIND_EXTENT:
            yield from self._apply_extent(record)
        elif kind == stream.KIND_REMOVE:
            yield from self._apply_remove(record)
        elif kind == stream.KIND_CURSOR:
            self._require_header()
            self._acknowledge()
        elif kind == stream.KIND_END:
            self._accept_end(record)
        else:
            raise ReplicationError(f"unknown record kind {kind!r}")
        return record["n"]

    def _require_header(self) -> None:
        if self.header is None:
            raise ReplicationError("stream sent records before its header")

    def _accept_header(self, record: Dict[str, Any]) -> None:
        if self.header is not None:
            raise ReplicationError("duplicate stream header")
        if record["version"] != stream.STREAM_VERSION:
            raise ReplicationError(
                f"unsupported stream version {record['version']}")
        if record["stream_id"] != self.cursor.stream_id:
            raise ReplicationError(
                f"header is for stream {record['stream_id']!r}, receiver "
                f"expects {self.cursor.stream_id!r}")
        if record["block_size"] != self.device.block_size:
            raise ReplicationError(
                f"block size mismatch: stream {record['block_size']}, "
                f"receiver {self.device.block_size}")
        if record["num_lbas"] > self.device.num_lbas:
            raise ReplicationError(
                f"source exports {record['num_lbas']} LBAs, receiver "
                f"only {self.device.num_lbas}")
        if record["base"] is not None:
            # Incremental chain: the receiver must already hold the
            # base snapshot a prior receive finalized.
            try:
                base_snap = self.device.tree.resolve(record["base"])
            except SnapshotError as exc:
                raise ReplicationError(
                    f"incremental stream needs base snapshot "
                    f"{record['base']!r} on the receiver: {exc}") from exc
            if base_snap.deleted:
                raise ReplicationError(
                    f"base snapshot {record['base']!r} was deleted on "
                    "the receiver")
        if (record["acked_extents"] != self.cursor.extents_acked
                or record["acked_removes"] != self.cursor.removes_acked):
            raise ReplicationError(
                f"sender resumes at ({record['acked_extents']} extents, "
                f"{record['acked_removes']} removes) but the committed "
                f"cursor says ({self.cursor.extents_acked}, "
                f"{self.cursor.removes_acked})")
        self.header = record

    def _apply_extent(self, record: Dict[str, Any]) -> Generator:
        self._require_header()
        self.device.nand.power_check(_RECV_APPLY_PRE)
        lba = record["lba"]
        payload = record["payload"]
        # sync=True: the block must be durable before it can ever be
        # acknowledged — a cursor commit covering a write still in a
        # volatile queue would leave a hole after a crash.
        yield from self.device.write_proc(lba, payload, sync=True)
        self._pending_extents.append(lba)
        self._pending_extent_digest = stream.fold_digest(
            self._pending_extent_digest,
            stream.content_digest(lba, stream.payload_crc(payload)))

    def _apply_remove(self, record: Dict[str, Any]) -> Generator:
        self._require_header()
        self.device.nand.power_check(_RECV_APPLY_PRE)
        lba = record["lba"]
        yield from self.device.trim_proc(lba)
        self._pending_removes.append(lba)
        self._pending_remove_digest = stream.fold_digest(
            self._pending_remove_digest, stream.remove_digest(lba))

    def _accept_end(self, record: Dict[str, Any]) -> None:
        self._require_header()
        if self._pending_extents or self._pending_removes:
            raise ReplicationError(
                "stream ended with unacknowledged records (the sender "
                "must emit a trailing cursor)")
        if (record["extent_total"] != self.cursor.extents_acked
                or record["remove_total"] != self.cursor.removes_acked):
            raise ReplicationError(
                f"stream end declares ({record['extent_total']} extents, "
                f"{record['remove_total']} removes) but "
                f"({self.cursor.extents_acked}, "
                f"{self.cursor.removes_acked}) were acknowledged")
        self.end = record

    # -- finalize --------------------------------------------------------
    def finalize_proc(self, verify: bool = True) -> Generator:
        """Materialize the snapshot; verify via activation readback."""
        if self.end is None:
            raise ReplicationError(
                "cannot finalize before the stream's end marker")
        self.device.nand.power_check(_RECV_FINALIZE_PRE)
        target = self.cursor.target
        snap = self._existing_snapshot(target)
        created = snap is None
        if snap is None:
            snap = yield from self.device.snapshot_create_proc(target)
        report: Dict[str, Any] = {
            "snapshot": target,
            "snap_id": snap.snap_id,
            "created": created,
            "verified": False,
        }
        if verify:
            report.update((yield from self._verify_readback(snap)))
            report["verified"] = True
        self.cursor.finalized = True
        return report

    def _existing_snapshot(self, name: str):
        """A torn finalize may have created the snapshot already (cut
        after the create note hit the log): finalize is idempotent and
        adopts it rather than minting a duplicate name."""
        try:
            snap = self.device.tree.resolve(name)
        except SnapshotError:
            return None
        return None if snap.deleted else snap

    def _verify_readback(self, snap) -> Generator:
        cur = self.cursor
        activated = yield from self.device.snapshot_activate_proc(snap)
        try:
            digest = 0
            lbas = sorted(cur.acked_extent_lbas())
            for lba in lbas:
                data = yield from activated.read_proc(lba)
                digest = stream.fold_digest(
                    digest,
                    stream.content_digest(lba, stream.payload_crc(data)))
            if digest != cur.extent_digest:
                raise ReplicationError(
                    f"stream {cur.stream_id!r} digest mismatch at "
                    f"finalize: activation readback {digest:#x}, wire "
                    f"accumulated {cur.extent_digest:#x}")
            still_mapped = [lba for lba in sorted(cur.acked_remove_lbas())
                            if activated.map.get(lba) is not None]
            if still_mapped:
                raise ReplicationError(
                    f"removed blocks still mapped after receive: "
                    f"{still_mapped}")
        finally:
            yield from self.device.snapshot_deactivate_proc(activated)
        return {
            "readback_lbas": len(lbas),
            "readback_digest": digest,
            "removes_checked": cur.removes_acked,
        }

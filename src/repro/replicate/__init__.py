"""Snapshot send/receive: changed-block replication between devices.

The log-structured FTL already knows exactly which blocks changed
between two snapshots (per-epoch validity + the epoch-summary index,
:mod:`repro.core.diff`); this package turns that into a production
replication story:

- :mod:`repro.replicate.stream` — the self-describing record stream: a
  header, per-segment extents in allocation-seq order, conservative
  removes, cursor watermarks, and an end marker, every record CRC'd
  and folded into an order-independent content digest;
- :mod:`repro.replicate.cursor` — durable resumable cursors: the
  committed watermark of receiver-acknowledged records a killed
  transfer restarts from;
- :mod:`repro.replicate.send` — the sender: plans the transfer with
  the multi-version changed-block lookup, reads winners under the
  scan barrier, streams records;
- :mod:`repro.replicate.receive` — the receiver: validates, applies,
  acknowledges, and at finalize materializes the snapshot and verifies
  the digest against a real activation readback;
- :mod:`repro.replicate.transfer` — the driver wiring sender to
  receiver with cursor commits, corruption injection for tests, and
  resume;
- :mod:`repro.replicate.harness` — torture/fault composition: cut the
  power mid-transfer at registered crash sites, transplant both
  devices' media, reopen, resume, and verify per-LBA digests end to
  end;
- ``python -m repro.replicate`` — the case-matrix CLI with JSON repro
  artifacts, following the torture/faults conventions.
"""

from repro.replicate.cursor import CursorStore, ReplicationCursor
from repro.replicate.harness import (
    ReplicationOutcome,
    ReplicationSpec,
    enumerate_replication_sites,
    run_replication_case,
)
from repro.replicate.receive import Receiver
from repro.replicate.send import make_stream_id, send_proc
from repro.replicate.transfer import replicate, replicate_proc

__all__ = [
    "CursorStore",
    "Receiver",
    "ReplicationCursor",
    "ReplicationOutcome",
    "ReplicationSpec",
    "enumerate_replication_sites",
    "make_stream_id",
    "replicate",
    "replicate_proc",
    "run_replication_case",
    "send_proc",
]

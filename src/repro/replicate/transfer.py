"""The transfer driver: sender -> receiver with durable cursor commits.

``replicate_proc`` wires :func:`repro.replicate.send.send_proc` to a
:class:`repro.replicate.receive.Receiver` over an in-process "wire"
(the emit generator), and owns the durability protocol:

1. the sender emits records; the receiver applies each synchronously
   (this models a simple request/ack pipe — every emitted record is
   acknowledged by the time emit returns);
2. when a *cursor* record passes, the receiver folds its pending
   applies into the acknowledged watermark, then the sender persists
   that watermark — crash site ``send.cursor_commit`` fires
   immediately before :meth:`CursorStore.commit`, so a cut there loses
   at most one batch of progress, never applied data;
3. after the end marker the receiver finalizes (snapshot create +
   activation-readback digest verification) and the finalized cursor
   is committed.

Both devices live on one simulated kernel (one replication host); a
power cut anywhere kills sender, receiver, and wire together, which is
exactly the failure the resumable cursor exists for.  For wire-fault
tests, ``corrupt_record=n`` corrupts the n-th record in flight: the
receiver's CRC check aborts the transfer with a typed error while the
committed cursor stays valid for a clean retry.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Dict, Generator, Optional

from repro.errors import ReplicationError
from repro.replicate import stream
from repro.replicate.cursor import CursorStore
from repro.replicate.receive import Receiver
from repro.replicate.send import make_stream_id, send_proc
from repro.torture import sites

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.iosnap import IoSnapDevice

_SEND_CURSOR_COMMIT_PRE = sites.SEND_CURSOR_COMMIT + ":" + sites.PHASE_PRE


def replicate(source: "IoSnapDevice", sink: "IoSnapDevice", base, target,
              store: CursorStore, **kwargs) -> Dict[str, Any]:
    """Synchronous façade for :func:`replicate_proc`."""
    return source.kernel.run_process(
        replicate_proc(source, sink, base, target, store, **kwargs),
        name="replicate")


def replicate_proc(source: "IoSnapDevice", sink: "IoSnapDevice",
                   base, target, store: CursorStore, *,
                   cursor_every: int = 8, limiter=None,
                   corrupt_record: Optional[int] = None,
                   verify: bool = True) -> Generator:
    """Send ``base -> target`` from ``source`` into ``sink``.

    Resumes automatically: if ``store`` holds a committed, unfinalized
    cursor for this stream, the transfer restarts from its watermark.
    Returns a merged report (send stats + finalize verification).
    """
    if source is sink:
        raise ReplicationError("source and sink must be distinct devices")
    if source.kernel is not sink.kernel:
        raise ReplicationError(
            "source and sink must share one simulated kernel (one host)")
    base_name = (source.tree.resolve(base).name
                 if base is not None else None)
    target_name = source.tree.resolve(target).name
    stream_id = make_stream_id(base_name, target_name)
    prior = store.load(stream_id)
    if prior is not None and prior.finalized:
        raise ReplicationError(
            f"stream {stream_id!r} already replicated (cursor finalized); "
            "delete the cursor to re-send")
    receiver = Receiver(sink, stream_id, base_name, target_name,
                        resume=prior)

    def emit(record: Dict[str, Any]) -> Generator:
        wire = record
        if corrupt_record is not None and record["n"] == corrupt_record:
            wire = stream.corrupted(record)
        result = yield from receiver.apply_record_proc(wire)
        if record["kind"] == stream.KIND_CURSOR:
            # The receiver acknowledged the batch; persist the
            # watermark.  ``pre`` cut semantics: nothing durable
            # happened yet, the batch is simply re-sent on resume.
            source.nand.power_check(_SEND_CURSOR_COMMIT_PRE)
            store.commit(receiver.state())
        return result

    send_report = yield from send_proc(source, base, target, emit,
                                       resume=prior,
                                       cursor_every=cursor_every,
                                       limiter=limiter)
    finalize_report = yield from receiver.finalize_proc(verify=verify)
    store.commit(receiver.state())
    return {
        **send_report,
        "finalize": finalize_report,
        "cursor": receiver.state().as_dict(),
    }

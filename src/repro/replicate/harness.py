"""Replication torture harness: cut, corrupt, fault — then prove it.

One replication case is ``run_replication_case(spec, target)``:

1. build a source/sink device pair on one simulated kernel (one
   replication host), populate the source with a seeded workload —
   prefill, snapshot ``base``, dirty writes + trims, snapshot
   ``target``, churn + forced cleaner passes so winners relocate;
2. arm a single :class:`~repro.torture.power.PowerModel` on *both*
   devices' NAND (a host power cut kills sender, receiver, and wire
   together) and run the chained transfer — full ``0 -> base``, then
   incremental ``base -> target``;
3. when the cut fires, abandon the kernel wholesale and keep what
   hardware keeps: both NAND arrays, both superblocks, the fault
   state, and the *committed* cursor store;
4. transplant the media under a fresh kernel, reopen both devices
   through real recovery, and resume the interrupted stream from the
   cursor watermark;
5. verify end to end: fsck both devices, then activate ``base`` and
   ``target`` on both and compare per-LBA digests read through the
   real activation path — byte-identical or the case fails.

Wire-corruption cases skip the transplant (the devices survive; the
transfer aborts on the record CRC) and retry from the cursor instead.
Fault cases compose a seeded :class:`~repro.faults.model.FaultPlan` on
the source; ``check_correctable_send_equivalence`` additionally proves
ECC-correctable read faults never change the stream digest.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from repro.core.iosnap import IoSnapConfig, IoSnapDevice
from repro.errors import PowerLossError, ReplicationError, ReproError
from repro.faults.model import FaultPlan, MediaFaultModel
from repro.ftl.fsck import fsck
from repro.nand.device import NandDevice
from repro.replicate.cursor import CursorStore
from repro.replicate.send import make_stream_id
from repro.replicate.transfer import replicate
from repro.sim import Kernel
from repro.sim.kernel import SimError
from repro.torture import sites
from repro.torture.harness import TortureConfig
from repro.torture.power import PowerModel, Target
from repro.torture.workload import payload_for

REPLICATION_SITES = (sites.SEND_CURSOR_COMMIT, sites.RECV_APPLY,
                     sites.RECV_FINALIZE)

# The chained transfer every case runs: a full send of ``base``, then
# an incremental send of ``target`` on top of it.
STREAMS: Tuple[Tuple[Optional[str], str], ...] = \
    ((None, "base"), ("base", "target"))


@dataclass(frozen=True)
class ReplicationSpec:
    """Seeded workload + device shape for one replication case."""

    seed: int = 2014
    prefill: int = 40       # writes before the base snapshot
    dirty: int = 14         # writes between base and target
    trims: int = 3          # trims between base and target
    churn: int = 30         # writes after target (cleaner fodder)
    span: int = 24          # LBA window the workload mutates
    gc_passes: int = 2      # forced cleaner passes after churn
    cursor_every: int = 4   # records per cursor watermark
    config: TortureConfig = TortureConfig()

    def as_dict(self) -> Dict[str, Any]:
        return {
            "seed": self.seed, "prefill": self.prefill,
            "dirty": self.dirty, "trims": self.trims,
            "churn": self.churn, "span": self.span,
            "gc_passes": self.gc_passes, "cursor_every": self.cursor_every,
        }

    @classmethod
    def from_dict(cls, raw: Dict[str, Any]) -> "ReplicationSpec":
        known = {k: int(v) for k, v in raw.items()
                 if k in ("seed", "prefill", "dirty", "trims", "churn",
                          "span", "gc_passes", "cursor_every")}
        return cls(**known)


@dataclass
class ReplicationOutcome:
    """Result of one replication torture case."""

    target: Optional[Target]
    fired: bool = False          # the armed power cut fired
    wire_error: bool = False     # injected corruption tripped the CRC
    resumed: bool = False        # a second incarnation ran
    failures: List[str] = field(default_factory=list)
    reports: List[Dict[str, Any]] = field(default_factory=list)

    @property
    def failed(self) -> bool:
        return bool(self.failures)


# ---------------------------------------------------------------------------
# Building and populating the pair
# ---------------------------------------------------------------------------
def _build_pair(spec: ReplicationSpec,
                fault_plan: Optional[FaultPlan] = None):
    kernel = Kernel()
    faults = MediaFaultModel(fault_plan) if fault_plan is not None else None
    source = IoSnapDevice.create(
        kernel, spec.config.nand_config(),
        IoSnapConfig(parallel_heads=spec.config.parallel_heads),
        faults=faults)
    sink = IoSnapDevice.create(
        kernel, spec.config.nand_config(),
        IoSnapConfig(parallel_heads=spec.config.parallel_heads))
    return kernel, source, sink


def populate_source(source: IoSnapDevice, spec: ReplicationSpec) -> None:
    """Seeded history: base, dirty+trims, target, churn, GC."""
    rng = random.Random(spec.seed)
    span = min(spec.span, source.num_lbas)
    for i in range(spec.prefill):
        lba = rng.randrange(span)
        source.write(lba, payload_for(lba, i))
    source.snapshot_create("base")
    for i in range(spec.dirty):
        lba = rng.randrange(span)
        source.write(lba, payload_for(lba, 1000 + i))
    for _ in range(spec.trims):
        source.trim(rng.randrange(span))
    source.snapshot_create("target")
    for i in range(spec.churn):
        lba = rng.randrange(span)
        source.write(lba, payload_for(lba, 2000 + i))
    # Forced cleaner passes relocate winners so sends/resumes must
    # cope with moved blocks (the scan barrier + move-log contract).
    for _ in range(spec.gc_passes):
        candidate = source.cleaner.select_candidate()
        if candidate is None:
            break
        source.kernel.run_process(
            source.cleaner.clean_segment(candidate, paced=False),
            name="forced-gc")


# ---------------------------------------------------------------------------
# Running the chained transfer
# ---------------------------------------------------------------------------
def _run_streams(source: IoSnapDevice, sink: IoSnapDevice,
                 store: CursorStore, spec: ReplicationSpec,
                 corrupt_record: Optional[int] = None,
                 ) -> List[Dict[str, Any]]:
    """Run/resume every not-yet-finalized stream, in chain order."""
    reports = []
    for base, target in STREAMS:
        prior = store.load(make_stream_id(base, target))
        if prior is not None and prior.finalized:
            continue
        reports.append(replicate(source, sink, base, target, store,
                                 cursor_every=spec.cursor_every,
                                 corrupt_record=corrupt_record))
    return reports


def _reopen_pair(source_nand: NandDevice, sink_nand: NandDevice):
    """Transplant both devices' surviving media under a fresh kernel.

    Mirrors :func:`repro.torture.harness._reopen` for a device pair:
    NAND arrays, superblocks, and physical fault state survive; every
    in-memory structure is rebuilt by real recovery.  The cursor store
    is durable host state and rides through untouched by the caller.
    """
    kernel = Kernel()
    pair = []
    for old in (source_nand, sink_nand):
        nand = NandDevice(kernel, old.config, faults=old.faults)
        nand.array = old.array
        nand.superblock = dict(old.superblock)
        pair.append(IoSnapDevice.open(kernel, nand))
    return kernel, pair[0], pair[1]


# ---------------------------------------------------------------------------
# Verification
# ---------------------------------------------------------------------------
def _snapshot_digests(device: IoSnapDevice, name: str) -> Dict[int, int]:
    activated = device.snapshot_activate(name)
    try:
        return activated.content_digests()
    finally:
        device.snapshot_deactivate(activated)


def verify_pair(source: IoSnapDevice, sink: IoSnapDevice,
                names: Tuple[str, ...] = ("base", "target")) -> List[str]:
    """fsck both devices, then per-LBA digest equality per snapshot."""
    failures = [f"fsck(source): {v}" for v in fsck(source)]
    failures += [f"fsck(sink): {v}" for v in fsck(sink)]
    for name in names:
        try:
            src = _snapshot_digests(source, name)
            snk = _snapshot_digests(sink, name)
        except (ReproError, SimError) as exc:
            failures.append(f"digest({name}): activation failed: {exc!r}")
            continue
        if src != snk:
            missing = sorted(set(src) - set(snk))[:8]
            extra = sorted(set(snk) - set(src))[:8]
            differ = sorted(lba for lba in set(src) & set(snk)
                            if src[lba] != snk[lba])[:8]
            failures.append(
                f"digest({name}): source and sink diverge "
                f"(missing={missing} extra={extra} differ={differ})")
    return failures


# ---------------------------------------------------------------------------
# One case, end to end
# ---------------------------------------------------------------------------
def run_replication_case(spec: ReplicationSpec,
                         target: Optional[Target] = None,
                         fault_plan: Optional[FaultPlan] = None,
                         corrupt_record: Optional[int] = None,
                         ) -> ReplicationOutcome:
    """One replication torture case; see the module docstring."""
    outcome = ReplicationOutcome(target=target)
    kernel, source, sink = _build_pair(spec, fault_plan)
    populate_source(source, spec)
    store = CursorStore()
    # Armed only for the transfer phase: the population workload is the
    # classic torture rig's territory; this sweep targets replication.
    power = PowerModel(target)
    source.nand.power = power
    sink.nand.power = power

    try:
        outcome.reports = _run_streams(source, sink, store, spec,
                                       corrupt_record)
    except (PowerLossError, SimError):
        if power.fired is None:
            raise  # a real bug, not our injected cut
        outcome.fired = True
    except ReplicationError as exc:
        if corrupt_record is None:
            outcome.failures.append(f"transfer: {exc!r}")
            return outcome
        outcome.wire_error = True

    if outcome.fired:
        # Host power loss: transplant both media + the committed store.
        kernel, source, sink = _reopen_pair(source.nand, sink.nand)
        outcome.resumed = True
        try:
            outcome.reports = _run_streams(source, sink, store, spec)
        except (ReproError, SimError) as exc:
            outcome.failures.append(f"resume after cut: {exc!r}")
            return outcome
    elif outcome.wire_error:
        # The devices survived; retry the transfer without corruption,
        # resuming from the last committed cursor.
        outcome.resumed = True
        try:
            outcome.reports = _run_streams(source, sink, store, spec)
        except (ReproError, SimError) as exc:
            outcome.failures.append(f"retry after corruption: {exc!r}")
            return outcome

    for base, name in STREAMS:
        cursor = store.load(make_stream_id(base, name))
        if cursor is None or not cursor.finalized:
            outcome.failures.append(
                f"stream {make_stream_id(base, name)!r} never finalized")
    outcome.failures.extend(verify_pair(source, sink))
    return outcome


# ---------------------------------------------------------------------------
# Site enumeration + fault equivalence
# ---------------------------------------------------------------------------
def enumerate_replication_sites(spec: ReplicationSpec,
                                fault_plan: Optional[FaultPlan] = None,
                                ) -> List[Target]:
    """Every (site, occurrence) the transfer phase visits.

    Counts the whole transfer — replication's own commit sites plus
    the receiver's write/trim/note programs — so any of them is an
    addressable cut coordinate for :func:`run_replication_case`.
    """
    _kernel, source, sink = _build_pair(spec, fault_plan)
    populate_source(source, spec)
    power = PowerModel(None)
    source.nand.power = power
    sink.nand.power = power
    _run_streams(source, sink, CursorStore(), spec)
    return power.injection_points()


def replication_site_targets(targets: List[Target]) -> List[Target]:
    """The subset landing on replication's own commit sites."""
    return [t for t in targets
            if t[0].split(":")[0] in REPLICATION_SITES]


def check_correctable_send_equivalence(spec: ReplicationSpec,
                                       plan: FaultPlan) -> List[str]:
    """ECC-correctable media errors must not change the stream digest.

    Runs the identical seeded workload + chained transfer twice — once
    clean, once with ``plan`` on the source — and compares the
    committed cursors' content digests stream by stream.  Correctable
    reads go through the retry ladder and yield corrected bytes, so
    any digest drift means the send path leaked raw error bits.
    """
    digests: Dict[str, Dict[str, Tuple[int, int]]] = {}
    for label, fault_plan in (("clean", None), ("faulty", plan)):
        _kernel, source, sink = _build_pair(spec, fault_plan)
        populate_source(source, spec)
        store = CursorStore()
        _run_streams(source, sink, store, spec)
        digests[label] = {
            sid: (cursor.extent_digest, cursor.remove_digest)
            for sid in store.streams()
            for cursor in (store.load(sid),) if cursor is not None}
    failures = []
    if set(digests["clean"]) != set(digests["faulty"]):
        failures.append(
            f"stream sets diverged: clean={sorted(digests['clean'])} "
            f"faulty={sorted(digests['faulty'])}")
        return failures
    for sid, clean in digests["clean"].items():
        if digests["faulty"][sid] != clean:
            failures.append(
                f"digest for {sid!r} changed under correctable faults: "
                f"clean={clean} faulty={digests['faulty'][sid]}")
    return failures

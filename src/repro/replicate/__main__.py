"""CLI: replication torture matrix (``python -m repro.replicate``).

Runs the full case matrix — clean chained transfer, power cuts at
every replication crash site (first and last occurrence of each),
wire corruption mid-stream, and a correctable-heavy media-fault
campaign with the digest-equivalence check — and exits non-zero on
any failure, writing a JSON repro artifact so CI can upload it.

    PYTHONPATH=src python -m repro.replicate
    PYTHONPATH=src python -m repro.replicate --list-sites
    PYTHONPATH=src python -m repro.replicate --site recv.apply:pre --occurrence 3
    PYTHONPATH=src python -m repro.replicate --corrupt 5
    PYTHONPATH=src python -m repro.replicate --artifact replicate-repro.json
"""

from __future__ import annotations

import argparse
import sys
from typing import Any, Dict, List, Optional

from repro.cli import EXIT_FAILURES, EXIT_INFRA, EXIT_OK
from repro.faults.harness import correctable_heavy_config
from repro.faults.model import FaultPlan
from repro.replicate.harness import (
    ReplicationOutcome,
    ReplicationSpec,
    check_correctable_send_equivalence,
    enumerate_replication_sites,
    replication_site_targets,
    run_replication_case,
)
from repro.sim.artifact import write_artifact
from repro.torture.power import Target


def _spec(args: argparse.Namespace) -> ReplicationSpec:
    return ReplicationSpec(seed=args.seed, cursor_every=args.cursor_every)


def _describe(outcome: ReplicationOutcome) -> str:
    bits = []
    if outcome.fired:
        bits.append("cut fired")
    if outcome.wire_error:
        bits.append("wire error")
    if outcome.resumed:
        bits.append("resumed")
    return ", ".join(bits) if bits else "clean"


def _case_entry(label: str, outcome: ReplicationOutcome) -> Dict[str, Any]:
    return {
        "case": label,
        "fired": outcome.fired,
        "wire_error": outcome.wire_error,
        "resumed": outcome.resumed,
        "failures": list(outcome.failures),
        "reports": outcome.reports,
    }


def _cut_targets(spec: ReplicationSpec, per_site: int) -> List[Target]:
    """First and last ``per_site // 2`` occurrences of each site —
    the edges are where off-by-one resume bugs live."""
    by_site: Dict[str, List[int]] = {}
    for site, occurrence in replication_site_targets(
            enumerate_replication_sites(spec)):
        by_site.setdefault(site, []).append(occurrence)
    targets: List[Target] = []
    head = max(1, per_site // 2)
    for site, occurrences in sorted(by_site.items()):
        picked = occurrences[:head] + occurrences[-head:]
        targets.extend((site, occ) for occ in sorted(set(picked)))
    return targets


def run_matrix(args: argparse.Namespace) -> List[Dict[str, Any]]:
    spec = _spec(args)
    entries: List[Dict[str, Any]] = []

    entries.append(_case_entry("clean", run_replication_case(spec)))

    for target in _cut_targets(spec, args.cuts_per_site):
        label = f"cut {target[0]}@{target[1]}"
        entries.append(_case_entry(
            label, run_replication_case(spec, target=target)))

    entries.append(_case_entry(
        f"corrupt record {args.corrupt}",
        run_replication_case(spec, corrupt_record=args.corrupt)))

    plan = FaultPlan(config=correctable_heavy_config(args.seed))
    entries.append(_case_entry(
        "correctable-heavy faults",
        run_replication_case(spec, fault_plan=plan)))
    equivalence = check_correctable_send_equivalence(spec, plan)
    entries.append({
        "case": "fault digest equivalence",
        "fired": False, "wire_error": False, "resumed": False,
        "failures": equivalence, "reports": [],
    })
    return entries


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.replicate",
        description="snapshot send/receive torture matrix")
    parser.add_argument("--seed", type=int, default=2014)
    parser.add_argument("--cursor-every", type=int, default=4,
                        help="records per cursor watermark")
    parser.add_argument("--cuts-per-site", type=int, default=2,
                        help="power cuts per replication site "
                             "(split between first and last occurrences)")
    parser.add_argument("--corrupt", type=int, default=5, metavar="N",
                        help="record number to corrupt in the wire case")
    parser.add_argument("--site", default=None,
                        help="run a single cut case at this site and exit")
    parser.add_argument("--occurrence", type=int, default=1,
                        help="which firing of --site to cut at")
    parser.add_argument("--list-sites", action="store_true",
                        help="print the transfer's injection points and exit")
    parser.add_argument("--artifact", default=None, metavar="FILE",
                        help="write a JSON repro artifact here on failure")
    args = parser.parse_args(argv)
    spec = _spec(args)

    if args.list_sites:
        targets = enumerate_replication_sites(spec)
        for site, occurrence in targets:
            print(f"{site} x{occurrence}")
        repl = replication_site_targets(targets)
        print(f"{len(targets)} injection points "
              f"({len(repl)} on replication sites)")
        return EXIT_OK

    if args.site:
        outcome = run_replication_case(
            spec, target=(args.site, args.occurrence))
        entries = [_case_entry(
            f"cut {args.site}@{args.occurrence}", outcome)]
    else:
        entries = run_matrix(args)

    failed = [e for e in entries if e["failures"]]
    for entry in entries:
        status = ("ok" if not entry["failures"]
                  else f"FAIL ({len(entry['failures'])})")
        detail = _describe(ReplicationOutcome(
            target=None, fired=entry["fired"],
            wire_error=entry["wire_error"], resumed=entry["resumed"]))
        print(f"{entry['case']:38s} {status:10s} [{detail}]")
        for failure in entry["failures"]:
            print(f"    {failure}")

    if failed:
        if args.artifact:
            body = {
                "seed": args.seed,
                "spec": spec.as_dict(),
                "cases": failed,
            }
            try:
                write_artifact(
                    args.artifact, "replicate-repro", body,
                    seed=args.seed,
                    replay=(f"python -m repro.replicate "
                            f"--seed {args.seed} "
                            f"--cursor-every {args.cursor_every}"),
                    config=spec.as_dict())
            except OSError as exc:
                print(f"error: cannot write artifact "
                      f"{args.artifact!r}: {exc}")
                return EXIT_INFRA
            print(f"repro artifact written to {args.artifact}")
        print(f"{len(failed)}/{len(entries)} cases failed")
        return EXIT_FAILURES
    print(f"all {len(entries)} cases passed")
    return EXIT_OK


if __name__ == "__main__":
    sys.exit(main())

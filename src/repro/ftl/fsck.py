"""Offline consistency checker ("fsck") for the FTL and ioSnap.

Audits the invariants the rest of the system relies on, by comparing
the in-memory structures against what is actually on the media.  Runs
outside virtual time (it is a debugging/validation tool, like a
device's offline diagnostics):

Base FTL invariants
  F1  every forward-map entry points at a programmed DATA page whose
      OOB header carries the same LBA;
  F2  no two LBAs share a physical page;
  F3  the validity bitmap marks exactly the mapped pages;
  F4  segment bookkeeping matches the media (header pages, sequence
      numbers, programmed extents; FREE segments are erased);
  F5  every registered note is programmed with a matching kind.

ioSnap invariants (additionally)
  S1  the active epoch's bitmap marks exactly the mapped pages;
  S2  every live snapshot's bitmap equals the fold of on-media packets
      over its epoch path (the ground truth an activation would build);
  S3  every valid bit in any live epoch points at a programmed page
      whose epoch lies on that epoch's path;
  S4  the epoch counter exceeds every epoch present on the media;
  S5  per-segment epoch summaries are supersets of the epochs actually
      present (they may over-approximate, never under-approximate);
  S6  activation state never leaks: every ACTIVATION-branch epoch that
      owns a validity bitmap belongs to a currently-open activation
      (after crash recovery there are none — activations die with
      host memory, §5.5);
  S7  the durable epoch-summary index is *exact*: each segment's
      stored epoch set and max-seq high-water mark equal a recompute
      from the OOB headers (the delta-rescan and warm-activation
      machinery assume exactness, not S5's superset leniency).

Flash-resident-map invariants (when ``map_cache_pages`` > 0)
  G1  every GTD entry points at a programmed MAP page whose OOB
      header and payload name that translation page with this
      device's span;
  G2  the dirty set and the resident pages' dirty flags agree, and
      every dirty page is resident (non-resident implies clean
      implies the GTD's flash copy is current);
  G3  the cleaner's per-segment live-MAP-page counts equal a recount
      from the GTD.

Media-fault invariants (when a fault model is attached)
  M1  no forward-map entry points into a RETIRED segment;
  M2  no validity bit (any live epoch) marks a page of a RETIRED
      segment;
  M3  no registered note lives on a RETIRED segment.

Pages recorded ``lost`` in the damage manifest are excluded from the
S2 media folds: the runtime dropped them from every structure when the
loss was recorded, and fsck's job is to prove the structures and the
manifest moved in lockstep (a lost page that still has a validity bit
somewhere IS a violation, and shows up as one).  The S5/S7 summary
audits keep seeing lost pages — the epoch-summary index describes what
is physically programmed, exactly like the raw-OOB recompute it is
checked against.

Usage::

    from repro.ftl.fsck import fsck
    violations = fsck(device)
    assert not violations, "\\n".join(violations)
"""

from __future__ import annotations

from typing import Callable, Dict, Iterable, Iterator, List, Tuple

from repro.core.snaptree import BranchKind
from repro.errors import SnapshotError
from repro.ftl.log import SegmentState
from repro.ftl.validity import iter_word_bits
from repro.nand.oob import PageKind

_NOTE_KIND_BY_TYPE = {
    "TrimNote": PageKind.NOTE_TRIM,
    "SnapCreateNote": PageKind.NOTE_SNAP_CREATE,
    "SnapDeleteNote": PageKind.NOTE_SNAP_DELETE,
    "SnapActivateNote": PageKind.NOTE_SNAP_ACTIVATE,
    "SnapDeactivateNote": PageKind.NOTE_SNAP_DEACTIVATE,
}


def fsck(device) -> List[str]:
    """Run every applicable invariant check; return violations found."""
    violations = _check_base(device)
    if hasattr(device, "tree"):  # ioSnap device
        violations.extend(_check_iosnap(device))
    return violations


# ---------------------------------------------------------------------------
# Page-wise bitmap comparison
# ---------------------------------------------------------------------------
# Bitmap audits used to expand every set bit into a Python set and
# diff the sets; on a realistic device that is millions of ints for a
# check that almost always finds nothing.  Instead, fold the expected
# ppns into per-page words and compare word against word (one XOR and
# popcount per bitmap page), expanding individual bit indices only for
# the pages that actually mismatch.
def _expected_words(ppns: Iterable[int], bits_per_page: int) -> Dict[int, int]:
    """Fold a set of ppns into {bitmap page index: word}."""
    words: Dict[int, int] = {}
    for ppn in ppns:
        idx = ppn // bits_per_page
        words[idx] = words.get(idx, 0) | 1 << (ppn % bits_per_page)
    return words


def _bitmap_page_diffs(get_word: Callable[[int], int],
                       expected: Dict[int, int], page_count: int,
                       bits_per_page: int,
                       ) -> Iterator[Tuple[List[int], List[int]]]:
    """Yield (extra bits, missing bits) for each mismatching page."""
    for page_idx in range(page_count):
        actual = get_word(page_idx)
        want = expected.get(page_idx, 0)
        diff = actual ^ want
        if not diff:
            continue
        base = page_idx * bits_per_page
        yield (list(iter_word_bits(diff & actual, base)),
               list(iter_word_bits(diff & want, base)))


# ---------------------------------------------------------------------------
# Base FTL
# ---------------------------------------------------------------------------
def _check_base(device) -> List[str]:
    out: List[str] = []
    array = device.nand.array
    seen_ppns: Dict[int, int] = {}

    for lba, ppn in device.map.items():
        if not array.is_programmed(ppn):
            out.append(f"F1: lba {lba} maps to unprogrammed ppn {ppn}")
            continue
        header = array.read_header(ppn)
        if header.kind is not PageKind.DATA:
            out.append(f"F1: lba {lba} maps to non-DATA page {ppn} "
                       f"({header.kind.name})")
        elif header.lba != lba:
            out.append(f"F1: lba {lba} maps to ppn {ppn} whose header "
                       f"says lba {header.lba}")
        if ppn in seen_ppns:
            out.append(f"F2: ppn {ppn} shared by lbas {seen_ppns[ppn]} "
                       f"and {lba}")
        seen_ppns[ppn] = lba

    # F3 only applies to the base FTL's single bitmap (ioSnap replaces
    # it with per-epoch CoW bitmaps, checked as S1).
    if hasattr(device, "validity"):
        bitmap = device.validity
        expected = _expected_words(seen_ppns, bitmap.bits_per_page)
        for extras, missings in _bitmap_page_diffs(
                bitmap.page_word, expected, bitmap.page_count,
                bitmap.bits_per_page):
            for extra in extras:
                out.append(f"F3: validity bit set for unmapped ppn {extra}")
            for missing in missings:
                out.append(f"F3: mapped ppn {missing} not marked valid")

    out.extend(_check_segments(device))
    out.extend(_check_notes(device))
    out.extend(_check_retired(device))
    if getattr(device, "map_is_cached", False):
        out.extend(_check_mapcache(device))
    return out


def _check_mapcache(device) -> List[str]:
    """GTD audit for the flash-resident forward map (G1-G3).

    G1  every GTD entry points at a programmed MAP page whose header
        and payload name the same translation page with the device's
        span;
    G2  the dirty set only names resident pages that are marked dirty
        (the non-resident => clean => flash-copy-current invariant);
    G3  the cleaner's per-segment live-MAP-page accounting equals a
        recount from the GTD.
    """
    out: List[str] = []
    cache = device.map
    array = device.nand.array
    from repro.ftl.packet import decode_payload

    for tidx, ppn in enumerate(cache._gtd):
        if ppn is None:
            continue
        if not array.is_programmed(ppn):
            out.append(f"G1: GTD[{tidx}] points at unprogrammed "
                       f"ppn {ppn}")
            continue
        record = array.read(ppn)
        if record.header.kind is not PageKind.MAP:
            out.append(f"G1: GTD[{tidx}] points at non-MAP page {ppn} "
                       f"({record.header.kind.name})")
            continue
        if record.header.lba != tidx:
            out.append(f"G1: GTD[{tidx}] points at ppn {ppn} whose "
                       f"header says tpage {record.header.lba}")
            continue
        if record.data is None:
            out.append(f"G1: MAP page {ppn} lost its payload")
            continue
        payload = decode_payload(record.data)
        if payload.get("tpage") != tidx or payload.get("span") != cache.span:
            out.append(f"G1: MAP page {ppn} payload names "
                       f"tpage {payload.get('tpage')} span "
                       f"{payload.get('span')}, expected {tidx}/"
                       f"{cache.span}")

    for tidx in cache._dirty:
        page = cache._pages.get(tidx)
        if page is None:
            out.append(f"G2: dirty set names non-resident tpage {tidx}")
        elif not page.dirty:
            out.append(f"G2: dirty set names clean tpage {tidx}")
    for tidx, page in cache._pages.items():
        if page.dirty and tidx not in cache._dirty:
            out.append(f"G2: resident tpage {tidx} is dirty but not in "
                       f"the dirty set")

    seg_pages = device.log.segment_pages
    expected: Dict[int, int] = {}
    for ppn in cache._gtd:
        if ppn is not None:
            seg = ppn // seg_pages
            expected[seg] = expected.get(seg, 0) + 1
    if expected != cache._seg_live:
        out.append(f"G3: per-segment live-MAP accounting {cache._seg_live} "
                   f"!= recount from GTD {expected}")
    return out


def _check_segments(device) -> List[str]:
    out: List[str] = []
    array = device.nand.array
    geometry = device.nand.geometry
    for seg in device.log.segments:
        if seg.state is SegmentState.FREE:
            first_block = seg.first_ppn // geometry.pages_per_block
            for block in range(first_block,
                               first_block + device.log.blocks_per_segment):
                if not array.block_is_erased(block):
                    out.append(f"F4: FREE segment {seg.index} has "
                               f"programmed pages in block {block}")
            continue
        if seg.state is SegmentState.RETIRED:
            continue
        if not array.is_programmed(seg.first_ppn):
            out.append(f"F4: {seg.state.value} segment {seg.index} missing "
                       "its header page")
            continue
        if array.is_torn(seg.first_ppn):
            # Crippled segment: the header program was torn by a power
            # cut or rejected by the medium (program-fail).  The log
            # closed it immediately and it holds no packets — a
            # legitimate transient state until the cleaner or recovery
            # scrubs it, not an invariant violation.
            continue
        header = array.read_header(seg.first_ppn)
        if header.kind is not PageKind.SEGMENT_HEADER:
            out.append(f"F4: segment {seg.index} first page is "
                       f"{header.kind.name}, not SEGMENT_HEADER")
        elif header.lba != seg.seq:
            out.append(f"F4: segment {seg.index} header seq {header.lba} "
                       f"!= bookkeeping seq {seg.seq}")
        for ppn in seg.written_ppns():
            if not array.is_programmed(ppn):
                out.append(f"F4: segment {seg.index} claims ppn {ppn} "
                           "written but it is unprogrammed")
                break
    return out


def _check_retired(device) -> List[str]:
    """M1..M3: nothing live may reference a RETIRED segment.

    Retired segments (grown-bad blocks, quarantined uncorrectables)
    are out of circulation forever; the self-healing paths promise to
    relocate or drop every live page before retiring.
    """
    out: List[str] = []
    retired = [seg for seg in device.log.segments
               if seg.state is SegmentState.RETIRED]
    if not retired:
        return out
    retired_idx = {seg.index for seg in retired}
    for lba, ppn in device.map.items():
        index = device.log.segment_of(ppn).index
        if index in retired_idx:
            out.append(f"M1: lba {lba} maps to ppn {ppn} in retired "
                       f"segment {index}")
    if hasattr(device, "validity"):
        for seg in retired:
            for ppn in device.validity.iter_set_in_range(
                    seg.first_ppn, seg.npages):
                out.append(f"M2: validity bit set for ppn {ppn} in "
                           f"retired segment {seg.index}")
    if hasattr(device, "live_epoch_bitmaps"):
        for epoch, bitmap in device.live_epoch_bitmaps():
            for seg in retired:
                for ppn in bitmap.iter_set_in_range(
                        seg.first_ppn, seg.npages):
                    out.append(f"M2: epoch {epoch} marks ppn {ppn} in "
                               f"retired segment {seg.index}")
    for ppn in device._note_registry:
        index = device.log.segment_of(ppn).index
        if index in retired_idx:
            out.append(f"M3: registered note at ppn {ppn} in retired "
                       f"segment {index}")
    return out


def _check_notes(device) -> List[str]:
    out: List[str] = []
    array = device.nand.array
    for ppn, note in device._note_registry.items():
        if not array.is_programmed(ppn):
            out.append(f"F5: registered note at unprogrammed ppn {ppn}")
            continue
        header = array.read_header(ppn)
        expected = _NOTE_KIND_BY_TYPE.get(type(note).__name__)
        if expected is None:
            out.append(f"F5: unknown note type {type(note).__name__} "
                       f"at ppn {ppn}")
        elif header.kind is not expected:
            out.append(f"F5: note at ppn {ppn} is {header.kind.name}, "
                       f"registry says {expected.name}")
    return out


# ---------------------------------------------------------------------------
# ioSnap
# ---------------------------------------------------------------------------
def _scan_media(device) -> List[Tuple[int, object]]:
    """All programmed packets in log order, without advancing time."""
    array = device.nand.array
    packets = []
    segments = sorted((seg for seg in device.log.segments if seg.seq >= 0),
                      key=lambda seg: seg.seq)
    for seg in segments:
        for ppn in seg.written_ppns():
            if array.is_programmed(ppn) and not array.is_torn(ppn):
                packets.append((ppn, array.read_header(ppn)))
    return packets


def _fold_path(packets, path: frozenset) -> Dict[int, int]:
    """{lba: ppn} ground truth for one epoch path (later seq wins)."""
    best: Dict[int, Tuple[int, int]] = {}
    trims: Dict[int, int] = {}
    for ppn, header in packets:
        if header.epoch not in path:
            continue
        if header.kind is PageKind.DATA:
            current = best.get(header.lba)
            if current is None or header.seq >= current[0]:
                best[header.lba] = (header.seq, ppn)
        elif header.kind is PageKind.NOTE_TRIM:
            if header.seq > trims.get(header.lba, -1):
                trims[header.lba] = header.seq
    for lba, trim_seq in trims.items():
        entry = best.get(lba)
        if entry is not None and entry[0] < trim_seq:
            del best[lba]
    return {lba: ppn for lba, (_seq, ppn) in best.items()}


def _check_iosnap(device) -> List[str]:
    out: List[str] = []
    total_pages = device.nand.geometry.total_pages
    packets = _scan_media(device)
    # Folds must skip recorded media losses (struck from every bitmap
    # when the loss was recorded); the summary audits must not.
    fold_packets = [(ppn, header) for ppn, header in packets
                    if not device.damage.ppn_lost(ppn)]
    tree = device.tree

    # S1: active bitmap == mapped pages (word compare per bitmap page).
    active = device.active_bitmap
    mapped = {ppn for _lba, ppn in device.map.items()}
    expected = _expected_words(mapped, active.bits_per_page)
    for extras, missings in _bitmap_page_diffs(
            active.resolve_word, expected, active.page_count,
            active.bits_per_page):
        for extra in extras:
            out.append(f"S1: active bitmap marks unmapped ppn {extra}")
        for missing in missings:
            out.append(f"S1: mapped ppn {missing} missing from active bitmap")

    # S2: each live snapshot's bitmap == media fold over its path.
    # (Duplicate copies awaiting erase make the bitmap the arbiter of
    # *which* copy is valid; fold ties resolve the same way.)
    for snap in tree.snapshots():
        bitmap = device._epoch_bitmaps.get(snap.epoch)
        if bitmap is None:
            out.append(f"S2: live snapshot {snap.name!r} has no bitmap")
            continue
        path = frozenset(tree.path_epochs(snap.epoch))
        truth = _fold_path(fold_packets, path)
        # Word-compare the bitmap against the fold first; the detailed
        # per-LBA analysis below only runs for actual mismatches.
        truth_words = _expected_words(truth.values(), bitmap.bits_per_page)
        if any(bitmap.resolve_word(idx) != truth_words.get(idx, 0)
               for idx in range(bitmap.page_count)):
            bits = set(bitmap.iter_set_in_range(0, total_pages))
            # The cleaner may leave a not-yet-erased duplicate; the
            # bitmap points at the surviving copy.  Compare by LBA.
            by_lba_bits = {}
            array = device.nand.array
            for ppn in bits:
                if not array.is_programmed(ppn):
                    out.append(f"S2: snapshot {snap.name!r} bitmap marks "
                               f"unprogrammed ppn {ppn}")
                    continue
                header = array.read_header(ppn)
                by_lba_bits[header.lba] = (header.seq, ppn)
            truth_seqs = {}
            for lba, ppn in truth.items():
                truth_seqs[lba] = array.read_header(ppn).seq
            if set(by_lba_bits) != set(truth):
                out.append(
                    f"S2: snapshot {snap.name!r} bitmap covers lbas "
                    f"{sorted(set(by_lba_bits) ^ set(truth))[:5]}... "
                    "differently from the media fold")
            else:
                for lba, (seq, _ppn) in by_lba_bits.items():
                    if seq != truth_seqs[lba]:
                        out.append(
                            f"S2: snapshot {snap.name!r} lba {lba}: bitmap "
                            f"has seq {seq}, fold says {truth_seqs[lba]}")

    # S3: every valid bit points at a programmed page with a path epoch.
    for epoch, bitmap in device.live_epoch_bitmaps():
        path = frozenset(tree.path_epochs(epoch))
        for ppn in bitmap.iter_set_in_range(0, total_pages):
            if not device.nand.array.is_programmed(ppn):
                out.append(f"S3: epoch {epoch} marks unprogrammed "
                           f"ppn {ppn}")
            else:
                header = device.nand.array.read_header(ppn)
                if header.epoch not in path:
                    out.append(
                        f"S3: epoch {epoch} marks ppn {ppn} from epoch "
                        f"{header.epoch}, not on its path")

    # S4: epoch counter beyond anything on media.
    max_epoch = max((h.epoch for _p, h in packets), default=0)
    if tree.peek_next_epoch() <= max_epoch:
        out.append(f"S4: epoch counter {tree.peek_next_epoch()} <= max "
                   f"on-media epoch {max_epoch}")

    # S5: segment summaries are supersets of reality.
    actual: Dict[int, set] = {}
    for ppn, header in packets:
        if header.kind in (PageKind.DATA, PageKind.NOTE_TRIM):
            index = device.log.segment_of(ppn).index
            actual.setdefault(index, set()).add(header.epoch)
    for index, epochs in actual.items():
        summary = device._segment_epochs.get(index, set())
        missing = epochs - summary
        if missing:
            out.append(f"S5: segment {index} summary missing epochs "
                       f"{sorted(missing)}")

    # S7: the stored epoch-summary index equals an *exact* recompute
    # from OOB headers — epoch sets and max-seq high-water marks both.
    # S5's superset leniency is not enough for the acceleration layer:
    # delta rescans and the durable checkpointed index assume exact
    # summaries (a phantom epoch would survive checkpoint validation
    # and misdirect selective skips forever).
    actual_max: Dict[int, int] = {}
    for ppn, header in packets:
        if header.kind in (PageKind.DATA, PageKind.NOTE_TRIM):
            index = device.log.segment_of(ppn).index
            if header.seq > actual_max.get(index, -1):
                actual_max[index] = header.seq
    epoch_index = device._epoch_index
    for index in sorted(set(actual) | set(epoch_index.epochs)
                        | set(epoch_index.max_seq)):
        stored = set(epoch_index.epochs.get(index, ()))
        media = actual.get(index, set())
        if stored != media:
            out.append(f"S7: segment {index} stored summary "
                       f"{sorted(stored)} != media {sorted(media)}")
        stored_max = epoch_index.high_water(index)
        media_max = actual_max.get(index, -1)
        if stored_max != media_max:
            out.append(f"S7: segment {index} high-water mark "
                       f"{stored_max} != media {media_max}")

    # S6: no leaked activation scan state — an ACTIVATION-branch epoch
    # may own a bitmap only while its activation is open.
    open_activation_epochs = {act.epoch for act in device._activations}
    for epoch in device._epoch_bitmaps:
        try:
            node = tree.node(epoch)
        except SnapshotError:
            out.append(f"S6: epoch {epoch} owns a bitmap but is not in "
                       "the snapshot tree")
            continue
        if (node.kind is BranchKind.ACTIVATION
                and epoch not in open_activation_epochs):
            out.append(f"S6: activation epoch {epoch} bitmap leaked "
                       "(no open activation)")

    return out

"""The segment cleaner (garbage collector), paper §5.2.3 and §5.4.

A background process that, when free segments run low, picks the closed
segment with the least valid data, copy-forwards the valid pages to the
head of the log (preserving their OOB headers: LBA, epoch, and sequence
number — activation-by-scan depends on this), then erases the segment
and returns it to the free pool.

All validity decisions go through hook methods on the owning FTL
(``_compute_valid`` / ``_block_still_valid`` / ``_relocate`` /
``_note_is_live``), so the same cleaner drives both the vanilla FTL and
the snapshot-aware ioSnap layer; ioSnap's hooks implement the merged
per-epoch bitmaps of Figure 6.

Pacing: moves are spread over ``cleaner_budget_ms`` using the move-count
estimate from ``_estimate_valid_count`` (see
:class:`repro.ftl.ratelimit.CleanerPacer` for why the quality of that
estimate is exactly the paper's Figure 10 story).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, Generator, Optional, Set

from repro.errors import (
    EraseFailError,
    FtlError,
    OutOfSpaceError,
    UncorrectableError,
    WearOutError,
)
from repro.ftl.log import Segment, SegmentState, stripe_head
from repro.ftl.ratelimit import CleanerPacer
from repro.nand.oob import PageKind
from repro.sim.stats import NS_PER_MS
from repro.torture import sites

if TYPE_CHECKING:  # pragma: no cover
    from repro.ftl.vsl import VslDevice


class SegmentCleaner:
    """Snapshot-agnostic cleaning engine driven by FTL hooks."""

    def __init__(self, ftl: "VslDevice") -> None:
        self.ftl = ftl
        self.kernel = ftl.kernel
        self.pacer = CleanerPacer(
            self.kernel, budget_ns=int(ftl.config.cleaner_budget_ms * NS_PER_MS))
        self._stopped = False
        # One run() loop per stripe (or a single global loop, key None);
        # each parks on its own wakeup and paces with its own budget so
        # concurrent cleans on different stripes don't clobber pacing.
        self._wakeups: Dict[Optional[int], object] = {}
        self._pacers: Dict[Optional[int], CleanerPacer] = {None: self.pacer}
        # Segments currently being cleaned: selection skips these so
        # two stripe workers never claim the same candidate.
        self._cleaning: Set[int] = set()
        self.segments_cleaned = 0
        self.segments_retired = 0
        self.pages_moved = 0
        self.notes_moved = 0
        self.pages_lost = 0       # uncorrectable during copy-forward
        self.segments_quarantined = 0

    # -- control -----------------------------------------------------------
    def stop(self) -> None:
        self._stopped = True
        self.maybe_kick(force=True)

    def maybe_kick(self, force: bool = False) -> None:
        """Wake parked cleaner workers if free space is low (or always)."""
        if not force and not self._pressure():
            return
        wakeups, self._wakeups = self._wakeups, {}
        for wakeup in wakeups.values():
            if not wakeup.triggered:
                wakeup.trigger()

    def _park(self, stripe: Optional[int]):
        wakeup = self.kernel.event()
        self._wakeups[stripe] = wakeup
        return wakeup

    def _pacer_for(self, stripe: Optional[int]) -> CleanerPacer:
        pacer = self._pacers.get(stripe)
        if pacer is None:
            pacer = self._pacers[stripe] = CleanerPacer(
                self.kernel, budget_ns=self.pacer.budget_ns)
        return pacer

    def _pressure(self) -> bool:
        return (self.ftl.log.free_segment_count()
                < self.ftl.config.gc_low_watermark)

    # -- main loop -----------------------------------------------------------
    def run(self, stripe: Optional[int] = None) -> Generator:
        """Background worker: clean whenever under space pressure.

        With ``stripe`` given the worker prefers candidates homed on
        that stripe (die affinity for its copy-forward appends) but
        borrows globally rather than idling while another stripe holds
        garbage — space is fungible, affinity is just a preference.
        One worker is spawned per stripe; a 1-stripe device gets the
        classic single global cleaner.
        """
        while not self._stopped:
            if not self._pressure():
                yield self._park(stripe)
                continue
            candidate = self.select_candidate(stripe)
            if candidate is None and stripe is not None:
                candidate = self.select_candidate()
            if candidate is None and self.ftl.log.free_segment_count() == 0:
                # Last resort: reclaimable pages may be trapped in the
                # open head segments; close one and look again.
                if self.ftl.log.force_close_head(stripe=stripe) \
                        or (stripe is not None
                            and self.ftl.log.force_close_head()):
                    candidate = self.select_candidate()
            if candidate is None:
                if (self.ftl.log.free_segment_count() == 0
                        and not self._cleaning):
                    # Truly wedged: nothing reclaimable anywhere and no
                    # sibling worker mid-clean that could free space.
                    self.ftl.log.fail_waiters(OutOfSpaceError(
                        "no reclaimable segments: device is full "
                        "(all data is live or snapshot-retained)"))
                yield self._park(stripe)
                continue
            try:
                yield from self.clean_segment(
                    candidate, pacer=self._pacer_for(stripe))
            except OutOfSpaceError as exc:
                # Even the reserve ran dry mid-clean.  The media is
                # still consistent (moved blocks were relocated, the
                # source segment simply wasn't erased); report the
                # condition to stalled writers and park.
                self.ftl.log.fail_waiters(exc)
                yield self._park(stripe)

    # -- selection ------------------------------------------------------------
    def _live_notes_by_segment(self) -> Dict[int, int]:
        """Live-note counts per segment index, in one registry pass.

        The registry holds every note page still tracked; grouping it
        once is O(notes), versus the per-candidate media rescans
        (O(segments x segment_pages)) this replaces.
        """
        counts: Dict[int, int] = {}
        array = self.ftl.nand.array
        seg_pages = self.ftl.log.segment_pages
        for ppn in self.ftl._note_registry:
            if not array.is_programmed(ppn):
                continue
            if self.ftl._note_is_live(ppn, array.read_header(ppn)):
                index = ppn // seg_pages
                counts[index] = counts.get(index, 0) + 1
        return counts

    def _occupied_count(self, seg: Segment) -> int:
        valid = self.ftl._estimate_valid_count(seg)
        return (valid + self._live_notes_by_segment().get(seg.index, 0)
                + self.ftl._map_pages_in_segment(seg))

    def select_candidate(self,
                         stripe: Optional[int] = None) -> Optional[Segment]:
        """Pick the next segment to clean per the configured policy.

        "greedy" takes the most-reclaimable closed segment;
        "cost_benefit" scores (1 - u) * age / (1 + u), preferring old,
        cold segments (Rosenblum & Ousterhout).  With ``stripe`` given,
        only candidates homed on that stripe are considered.  Segments
        a sibling worker is already cleaning are skipped.  Returns None
        when no eligible closed segment would free anything.
        """
        policy = self.ftl.config.gc_policy
        newest_seq = max((seg.seq for seg in self.ftl.log.closed_segments()),
                         default=0)
        notes_by_seg = self._live_notes_by_segment()
        best: Optional[Segment] = None
        best_score = None
        for seg in self.ftl.log.closed_segments(stripe):
            if seg.index in self._cleaning:
                continue
            # Translation-aware: GTD-referenced MAP pages occupy space
            # the erase cannot reclaim for free (they must be copied
            # forward), so they count against the candidate exactly
            # like live data and live notes do.
            occupied = (self.ftl._estimate_valid_count(seg)
                        + notes_by_seg.get(seg.index, 0)
                        + self.ftl._map_pages_in_segment(seg))
            if occupied >= seg.data_capacity:
                continue  # nothing reclaimable
            if policy == "greedy":
                score = -occupied
            else:
                u = occupied / seg.data_capacity
                age = newest_seq - seg.seq + 1
                score = (1.0 - u) * age / (1.0 + u)
            if best_score is None or score > best_score:
                best, best_score = seg, score
        return best

    # -- cleaning one segment ---------------------------------------------------
    def clean_segment(self, seg: Segment, paced: bool = True,
                      pacer: Optional[CleanerPacer] = None) -> Generator:
        """Copy-forward valid data and live notes, then erase ``seg``."""
        if seg.state is not SegmentState.CLOSED:
            raise FtlError(f"cannot clean segment in state {seg.state}")
        if seg.index in self._cleaning:
            raise FtlError(f"segment {seg.index} is already being cleaned")
        if pacer is None:
            pacer = self.pacer
        # Copy-forwards land on the GC head of the segment's own
        # stripe, so concurrent stripe workers append to disjoint dies.
        gc_stripe = self.ftl.log.stripe_of_segment(seg.index)
        self._cleaning.add(seg.index)
        # A flash-resident map defers eviction writebacks while a clean
        # is in flight: copy-forward map fixups are absorbed by dirty
        # resident pages (RAM) instead of appending — appends here
        # would eat the very space the clean exists to free.
        self.ftl._map_gc_pause()
        try:
            yield from self._clean_segment_locked(seg, paced, pacer,
                                                  gc_stripe)
        finally:
            self.ftl._map_gc_resume()
            self._cleaning.discard(seg.index)

    def _clean_segment_locked(self, seg: Segment, paced: bool,
                              pacer: CleanerPacer,
                              gc_stripe: int) -> Generator:
        started = self.kernel.now

        valid_ppns, merge_cost_ns = self.ftl._compute_valid(seg)
        yield merge_cost_ns  # CPU: merging/scanning validity bitmaps
        estimate = self.ftl._estimate_valid_count(seg)
        if paced:
            pacer.start(estimate)

        moved = 0
        lost = 0
        moves_done_at = self.kernel.now
        for ppn in valid_ppns:
            if not self.ftl._block_still_valid(ppn):
                continue  # invalidated by foreground I/O mid-clean
            move_started = self.kernel.now
            try:
                record = yield from self.ftl.nand.read_page(ppn)
            except UncorrectableError:
                # Copy-forward what's salvageable: record the casualty
                # (drops the page from the map and every epoch's
                # validity bits) and keep moving the rest.  The segment
                # is quarantined below instead of erased.
                self.ftl.record_media_loss(ppn, reason="gc-copy")
                self.pages_lost += 1
                lost += 1
                continue
            new_ppn, _done = yield from self.ftl.log.append(
                record.header, record.data, privileged=True,
                head=stripe_head(self.ftl._gc_head_for(ppn, record.header),
                                 gc_stripe),
                site=sites.GC_COPY)
            self.ftl._on_packet_appended(new_ppn, record.header)
            yield from self.ftl._relocate(ppn, new_ppn, record.header)
            moved += 1
            if paced:
                yield from pacer.pace(self.kernel.now - move_started)
        moves_done_at = self.kernel.now

        for ppn in seg.written_ppns():
            array = self.ftl.nand.array
            # Torn pages (power-cut residue) occupy their slot but hold
            # nothing; they are reclaimed with the segment.
            header = array.read_header(ppn) \
                if array.is_programmed(ppn) and not array.is_torn(ppn) \
                else None
            if header is None or header.kind is PageKind.DATA:
                continue
            if header.kind is PageKind.MAP:
                # Copy-forward updates the GTD, never the data map; a
                # copy the GTD no longer references is stale and dies
                # with the segment.
                yield from self.ftl._relocate_map_page(ppn, header,
                                                       gc_stripe)
                continue
            if ppn in self.ftl._note_registry and self.ftl._note_is_live(ppn, header):
                try:
                    record = yield from self.ftl.nand.read_page(ppn)
                except UncorrectableError:
                    self.ftl.record_media_loss(ppn, reason="gc-note",
                                               header=header)
                    self.pages_lost += 1
                    lost += 1
                    continue
                new_ppn, _done = yield from self.ftl.log.append(
                    record.header, record.data, privileged=True,
                    head=stripe_head("gc", gc_stripe),
                    site=sites.GC_NOTE)
                self.ftl._on_packet_appended(new_ppn, record.header)
                self.ftl._relocate_note(ppn, new_ppn)
                self.notes_moved += 1

        # Never pull media out from under an in-progress activation or
        # recovery scan (they hold references into this segment).
        yield from self.ftl.erase_barrier()
        # Last look at the segment's OOB headers (sanitizer audits the
        # epoch-summary index against them before they are wiped).
        self.ftl._before_segment_erase(seg)
        retire = False
        if lost:
            # Quarantine: the segment still holds uncorrectable cells.
            # Leave them unerased (nothing live remains — casualties
            # were dropped from the structures, survivors were copied
            # out) and pull the segment from circulation for good.
            self.segments_quarantined += 1
            retire = True
        else:
            first_block = (seg.first_ppn
                           // self.ftl.nand.geometry.pages_per_block)
            for block in range(first_block,
                               first_block + self.ftl.log.blocks_per_segment):
                try:
                    yield from self.ftl.nand.erase_block(block,
                                                         site=sites.GC_ERASE)
                except (WearOutError, EraseFailError):
                    # Either way the block is done: stale data may
                    # linger but every live page was copied out, and
                    # recovery's seq-order folding keeps the copies
                    # ahead of the stale originals.
                    retire = True
        self.ftl._on_segment_erased(seg)
        if retire:
            # All valid data was already copied out; take the segment
            # out of circulation and keep running at reduced capacity.
            self.ftl.log.retire_segment(seg.index)
            self.segments_retired += 1
        else:
            self.ftl.log.release_segment(seg.index)

        self.segments_cleaned += 1
        self.pages_moved += moved
        self.ftl.metrics.cleaner_runs.append({
            "segment": seg.index,
            "moved": moved,
            "estimate": estimate,
            "merge_ns": merge_cost_ns,
            "total_ns": self.kernel.now - started,
            "at": started,
            "moves_done_at": moves_done_at,
        })

    def ensure_free(self, target: int) -> Generator:
        """Clean (unpaced) until at least ``target`` segments are free.

        Used at shutdown to make room for the checkpoint; stops early
        when nothing reclaimable remains.
        """
        while self.ftl.log.free_segment_count() < target:
            candidate = self.select_candidate()
            if candidate is None:
                break
            yield from self.clean_segment(candidate, paced=False)

    def force_clean(self, seg: Segment, paced: bool = True) -> None:
        """Synchronously clean one specific segment (experiment helper)."""
        self.kernel.run_process(self.clean_segment(seg, paced=paced),
                                name=f"force-clean@{seg.index}")

"""The base FTL: a simulation of the Fusion-io Virtual Storage Layer.

Provides the "vanilla" remap-on-write FTL of paper §5.2 — forward map,
validity bitmap, log-structured segments, segment cleaner, checkpoint,
and log-scan crash recovery — on top of :mod:`repro.nand`.
"""

from repro.ftl.btree import BPlusTree
from repro.ftl.cleaner import SegmentCleaner
from repro.ftl.fsck import fsck
from repro.ftl.log import Log, Segment, SegmentState
from repro.ftl.packet import (
    SnapActivateNote,
    SnapCreateNote,
    SnapDeactivateNote,
    SnapDeleteNote,
    TrimNote,
    decode_note,
    encode_note,
)
from repro.ftl.ratelimit import CleanerPacer, DutyCycleLimiter, NullLimiter
from repro.ftl.recovery import ScannedPacket, fold_winners, recover, scan_log
from repro.ftl.validity import ValidityBitmap, merge_pages, popcount
from repro.ftl.vsl import CpuCosts, FtlConfig, FtlMetrics, VslDevice

__all__ = [
    "BPlusTree",
    "CleanerPacer",
    "CpuCosts",
    "DutyCycleLimiter",
    "FtlConfig",
    "FtlMetrics",
    "Log",
    "NullLimiter",
    "ScannedPacket",
    "Segment",
    "SegmentCleaner",
    "SegmentState",
    "SnapActivateNote",
    "SnapCreateNote",
    "SnapDeactivateNote",
    "SnapDeleteNote",
    "TrimNote",
    "ValidityBitmap",
    "VslDevice",
    "decode_note",
    "encode_note",
    "fold_winners",
    "fsck",
    "merge_pages",
    "popcount",
    "recover",
    "scan_log",
]

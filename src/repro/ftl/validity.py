"""Paged validity bitmaps.

The validity bitmap records, for every physical page, whether it holds
live data (paper §5.2.2, Figure 2).  It is organized as fixed-size
*bitmap pages* so that ioSnap can apply copy-on-write at bitmap-page
granularity (paper §5.4.1, Figure 5); the base FTL uses the same layout
without CoW.

Bitmap pages are allocated lazily: an absent page reads as all-zero.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Tuple

from repro.errors import AddressError

_POPCOUNT = [bin(i).count("1") for i in range(256)]


class ValidityBitmap:
    """A flat validity bitmap over ``total_bits`` physical pages."""

    def __init__(self, total_bits: int, page_bytes: int = 512) -> None:
        if total_bits <= 0:
            raise ValueError("total_bits must be positive")
        if page_bytes <= 0:
            raise ValueError("page_bytes must be positive")
        self.total_bits = total_bits
        self.page_bytes = page_bytes
        self.bits_per_page = page_bytes * 8
        self._pages: Dict[int, bytearray] = {}

    # -- addressing -----------------------------------------------------
    def _locate(self, bit: int) -> Tuple[int, int, int]:
        if not 0 <= bit < self.total_bits:
            raise AddressError(f"bit {bit} out of range [0, {self.total_bits})")
        page_idx, offset = divmod(bit, self.bits_per_page)
        return page_idx, offset >> 3, offset & 7

    def page_index_of(self, bit: int) -> int:
        return self._locate(bit)[0]

    @property
    def page_count(self) -> int:
        """Number of bitmap pages needed to cover the whole device."""
        return (self.total_bits + self.bits_per_page - 1) // self.bits_per_page

    # -- bit operations ---------------------------------------------------
    def set(self, bit: int) -> None:
        page_idx, byte, shift = self._locate(bit)
        page = self._pages.get(page_idx)
        if page is None:
            page = bytearray(self.page_bytes)
            self._pages[page_idx] = page
        page[byte] |= 1 << shift

    def clear(self, bit: int) -> None:
        page_idx, byte, shift = self._locate(bit)
        page = self._pages.get(page_idx)
        if page is not None:
            page[byte] &= ~(1 << shift) & 0xFF

    def test(self, bit: int) -> bool:
        page_idx, byte, shift = self._locate(bit)
        page = self._pages.get(page_idx)
        return bool(page is not None and page[byte] & (1 << shift))

    # -- bulk queries ------------------------------------------------------
    def count(self) -> int:
        """Total number of set bits."""
        return sum(
            sum(_POPCOUNT[b] for b in page) for page in self._pages.values()
        )

    def count_range(self, start: int, length: int) -> int:
        """Number of set bits in [start, start + length)."""
        return sum(1 for _ in self.iter_set_in_range(start, length))

    def iter_set_in_range(self, start: int, length: int) -> Iterator[int]:
        """Yield set bit indices in [start, start + length), ascending."""
        if length < 0 or start < 0 or start + length > self.total_bits:
            raise AddressError(
                f"range [{start}, {start + length}) out of bounds")
        end = start + length
        bit = start
        while bit < end:
            page_idx = bit // self.bits_per_page
            page_end = min(end, (page_idx + 1) * self.bits_per_page)
            page = self._pages.get(page_idx)
            if page is not None:
                for b in range(bit, page_end):
                    offset = b % self.bits_per_page
                    if page[offset >> 3] & (1 << (offset & 7)):
                        yield b
            bit = page_end

    # -- page-level access (used by CoW layering and checkpoints) ---------
    def materialized_pages(self) -> Dict[int, bytes]:
        """Copies of all allocated bitmap pages, keyed by page index."""
        return {idx: bytes(page) for idx, page in self._pages.items()}

    def load_pages(self, pages: Dict[int, bytes]) -> None:
        """Replace contents from a checkpoint image."""
        self._pages = {idx: bytearray(data) for idx, data in pages.items()}

    def get_page(self, page_idx: int) -> bytes:
        """Contents of one bitmap page (zeros if never allocated)."""
        page = self._pages.get(page_idx)
        return bytes(page) if page is not None else bytes(self.page_bytes)

    def allocated_page_count(self) -> int:
        return len(self._pages)


def merge_pages(pages: List[bytes], page_bytes: int) -> bytearray:
    """Logical OR of several same-sized bitmap pages (paper Figure 6)."""
    merged = bytearray(page_bytes)
    for page in pages:
        if len(page) != page_bytes:
            raise ValueError("bitmap page size mismatch")
        for i, byte in enumerate(page):
            merged[i] |= byte
    return merged


def popcount(page: bytes) -> int:
    return sum(_POPCOUNT[b] for b in page)

"""Paged validity bitmaps — word-level engine.

The validity bitmap records, for every physical page, whether it holds
live data (paper §5.2.2, Figure 2).  It is organized as fixed-size
*bitmap pages* so that ioSnap can apply copy-on-write at bitmap-page
granularity (paper §5.4.1, Figure 5); the base FTL uses the same layout
without CoW.

Bitmap pages are allocated lazily: an absent page reads as all-zero.

Storage layout: each bitmap page is one Python big-int interpreted
little-endian — bit ``i`` of the integer is bit ``i`` of the page, and
``int.from_bytes(page_bytes_blob, "little")`` round-trips with the
on-media byte image.  All bulk operations (count, range count, merge,
set-bit iteration) are whole-word arithmetic: a masked ``bit_count()``
replaces per-bit loops, a single big-int OR replaces per-byte merges,
and iteration strips one set bit per step so all-zero words cost
nothing.  ``PERF_COUNTERS`` records which engine path served each
operation so benchmarks can assert the fast paths are actually used.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Tuple

from repro import sanitize
from repro.errors import AddressError

# Observability for the perf-regression harness (see bench/perfguard.py
# and benchmarks/test_perfguard_fastpath.py): word_* count fast-path
# invocations; bit_fallback counts per-bit reference/naive loops and
# must stay zero on every production path.
PERF_COUNTERS: Dict[str, int] = {
    "word_merge": 0,
    "word_count": 0,
    "word_iter": 0,
    "bit_fallback": 0,
}


def reset_perf_counters() -> None:
    for key in PERF_COUNTERS:
        PERF_COUNTERS[key] = 0


def iter_word_bits(word: int, base: int) -> Iterator[int]:
    """Yield ``base + i`` for every set bit ``i`` of ``word``, ascending.

    Strips the lowest set bit each step (``word & -word``), so cost is
    proportional to the number of set bits, not the word width.
    """
    while word:
        low = word & -word
        yield base + low.bit_length() - 1
        word ^= low


class ValidityBitmap:
    """A flat validity bitmap over ``total_bits`` physical pages."""

    def __init__(self, total_bits: int, page_bytes: int = 512) -> None:
        if total_bits <= 0:
            raise ValueError("total_bits must be positive")
        if page_bytes <= 0:
            raise ValueError("page_bytes must be positive")
        self.total_bits = total_bits
        self.page_bytes = page_bytes
        self.bits_per_page = page_bytes * 8
        self._pages: Dict[int, int] = {}

    # -- addressing -----------------------------------------------------
    def _locate(self, bit: int) -> Tuple[int, int]:
        if not 0 <= bit < self.total_bits:
            raise AddressError(f"bit {bit} out of range [0, {self.total_bits})")
        return divmod(bit, self.bits_per_page)

    def page_index_of(self, bit: int) -> int:
        return self._locate(bit)[0]

    @property
    def page_count(self) -> int:
        """Number of bitmap pages needed to cover the whole device."""
        return (self.total_bits + self.bits_per_page - 1) // self.bits_per_page

    # -- bit operations ---------------------------------------------------
    def set(self, bit: int) -> bool:
        """Set a bit; returns True if the bit was previously clear."""
        page_idx, offset = self._locate(bit)
        mask = 1 << offset
        word = self._pages.get(page_idx, 0)
        if word & mask:
            return False
        self._pages[page_idx] = word | mask
        return True

    def clear(self, bit: int) -> bool:
        """Clear a bit; returns True if the bit was previously set."""
        page_idx, offset = self._locate(bit)
        word = self._pages.get(page_idx)
        if word is None or not word & (1 << offset):
            return False
        self._pages[page_idx] = word & ~(1 << offset)
        return True

    def test(self, bit: int) -> bool:
        page_idx, offset = self._locate(bit)
        word = self._pages.get(page_idx)
        return bool(word is not None and word >> offset & 1)

    # -- bulk queries ------------------------------------------------------
    def count(self) -> int:
        """Total number of set bits."""
        PERF_COUNTERS["word_count"] += 1
        return sum(word.bit_count() for word in self._pages.values())

    def _check_range(self, start: int, length: int) -> None:
        if length < 0 or start < 0 or start + length > self.total_bits:
            raise AddressError(
                f"range [{start}, {start + length}) out of bounds")

    def count_range(self, start: int, length: int) -> int:
        """Number of set bits in [start, start + length)."""
        self._check_range(start, length)
        if length == 0:
            return 0
        PERF_COUNTERS["word_count"] += 1
        end = start + length
        bpp = self.bits_per_page
        pages = self._pages
        total = 0
        for page_idx in range(start // bpp, (end - 1) // bpp + 1):
            word = pages.get(page_idx)
            if not word:
                continue
            total += _mask_word(word, page_idx * bpp, start, end,
                                bpp).bit_count()
        return total

    def iter_set_in_range(self, start: int, length: int) -> Iterator[int]:
        """Yield set bit indices in [start, start + length), ascending."""
        self._check_range(start, length)
        if length == 0:
            return
        PERF_COUNTERS["word_iter"] += 1
        end = start + length
        bpp = self.bits_per_page
        pages = self._pages
        for page_idx in range(start // bpp, (end - 1) // bpp + 1):
            word = pages.get(page_idx)
            if not word:
                continue
            base = page_idx * bpp
            yield from iter_word_bits(
                _mask_word(word, base, start, end, bpp), base)

    # -- page-level access (used by CoW layering and checkpoints) ---------
    def page_word(self, page_idx: int) -> int:
        """One bitmap page as a little-endian big-int (0 if absent)."""
        return self._pages.get(page_idx, 0)

    def materialized_pages(self) -> Dict[int, bytes]:
        """Copies of all allocated bitmap pages, keyed by page index."""
        nbytes = self.page_bytes
        return {idx: word.to_bytes(nbytes, "little")
                for idx, word in self._pages.items()}

    def load_pages(self, pages: Dict[int, bytes]) -> None:
        """Replace contents from a checkpoint image."""
        self._pages = {idx: int.from_bytes(data, "little")
                       for idx, data in pages.items()}
        if sanitize.enabled:
            # A checkpoint image may be stale or corrupt; reject pages
            # that do not belong to this bitmap's geometry.
            for idx, word in self._pages.items():
                sanitize.check(0 <= idx < self.page_count,
                               f"loaded page index {idx} out of range")
                sanitize.check(word >> self.bits_per_page == 0,
                               f"loaded page {idx} overflows "
                               f"{self.bits_per_page}-bit page width")

    def get_page(self, page_idx: int) -> bytes:
        """Contents of one bitmap page (zeros if never allocated)."""
        return self._pages.get(page_idx, 0).to_bytes(self.page_bytes, "little")

    def allocated_page_count(self) -> int:
        return len(self._pages)


def _mask_word(word: int, base: int, start: int, end: int, bpp: int) -> int:
    """Restrict a page word to the overlap of its page with [start, end)."""
    lo = start - base
    if lo > 0:
        word = word >> lo << lo
    hi = end - base
    if hi < bpp:
        word &= (1 << hi) - 1
    return word


def merge_words(words: List[int]) -> int:
    """Logical OR of several page words (paper Figure 6), one op each."""
    PERF_COUNTERS["word_merge"] += 1
    merged = 0
    for word in words:
        merged |= word
    return merged


def merge_pages(pages: List[bytes], page_bytes: int) -> bytearray:
    """Logical OR of several same-sized bitmap pages (paper Figure 6)."""
    for page in pages:
        if len(page) != page_bytes:
            raise ValueError("bitmap page size mismatch")
    merged = merge_words([int.from_bytes(page, "little") for page in pages])
    return bytearray(merged.to_bytes(page_bytes, "little"))


def popcount(page: bytes) -> int:
    return int.from_bytes(page, "little").bit_count()

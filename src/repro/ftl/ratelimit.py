"""Rate limiting for background work (paper §5.6–5.7, Figures 9–10).

Two mechanisms:

- :class:`DutyCycleLimiter` — the paper's activation knob, quoted as
  "for every x usec of activation work done, the activation thread has
  to sleep for y msecs" (Figure 9 caption).  Background processes call
  :meth:`DutyCycleLimiter.pace` after each unit of work.

- :class:`CleanerPacer` — the segment cleaner's budget-based pacing.
  The cleaner is given an *estimate* of the valid pages it must move
  and a time budget; it spreads the moves evenly across the budget.
  If the estimate is too low (the vanilla policy counting only the
  active epoch's validity, ignoring snapshotted data), the budget runs
  out early and the tail of the clean runs at full speed, hammering
  foreground latency — exactly the pathology Figure 10(b) shows and the
  snapshot-aware estimate of Figure 10(c) fixes.
"""

from __future__ import annotations

from typing import Generator

from repro.sim import Kernel
from repro.sim.stats import NS_PER_MS, NS_PER_US


class DutyCycleLimiter:
    """Sleep ``sleep_ns`` after every ``work_ns`` of accumulated work."""

    def __init__(self, kernel: Kernel, work_ns: int, sleep_ns: int) -> None:
        if work_ns <= 0 or sleep_ns < 0:
            raise ValueError("work_ns must be > 0 and sleep_ns >= 0")
        self.kernel = kernel
        self.work_ns = work_ns
        self.sleep_ns = sleep_ns
        self._accumulated = 0
        self.total_slept_ns = 0

    @classmethod
    def from_paper_knob(cls, kernel: Kernel, work_us: float,
                        sleep_ms: float) -> "DutyCycleLimiter":
        """Build from the paper's "x usec / y msec" notation."""
        return cls(kernel, work_ns=int(work_us * NS_PER_US),
                   sleep_ns=int(sleep_ms * NS_PER_MS))

    def pace(self, work_done_ns: int) -> Generator:
        """Account ``work_done_ns`` of work; sleep if the quantum is full."""
        self._accumulated += work_done_ns
        while self._accumulated >= self.work_ns:
            self._accumulated -= self.work_ns
            self.total_slept_ns += self.sleep_ns
            yield self.sleep_ns


class NullLimiter:
    """No rate limiting (Figure 9(a)'s naive activation)."""

    total_slept_ns = 0

    def pace(self, work_done_ns: int) -> Generator:
        del work_done_ns
        return
        yield  # pragma: no cover - makes this a generator function


class CleanerPacer:
    """Spread an estimated number of moves across a time budget.

    ``start(estimated_moves)`` computes the per-move delay; each call to
    :meth:`pace` sleeps whatever remains of that allotment after the
    move's actual I/O time.  Once more moves than estimated have
    happened, the allotment is zero and the cleaner runs flat out.
    """

    def __init__(self, kernel: Kernel, budget_ns: int) -> None:
        if budget_ns < 0:
            raise ValueError("budget must be >= 0")
        self.kernel = kernel
        self.budget_ns = budget_ns
        self._delay_per_move = 0
        self._moves_left = 0
        self.total_slept_ns = 0

    def start(self, estimated_moves: int) -> None:
        """Begin pacing one segment clean sized to ``estimated_moves``."""
        if estimated_moves <= 0:
            self._delay_per_move = 0
            self._moves_left = 0
        else:
            self._delay_per_move = self.budget_ns // estimated_moves
            self._moves_left = estimated_moves

    def pace(self, move_io_ns: int) -> Generator:
        """Called after each block move with its actual I/O time."""
        if self._moves_left <= 0:
            return
        self._moves_left -= 1
        remaining = self._delay_per_move - move_io_ns
        if remaining > 0:
            self.total_slept_ns += remaining
            yield remaining

"""Crash recovery by log scan (paper §5.5).

After an unclean shutdown there is no checkpoint to restore, so the FTL
is rebuilt from what the log itself says: every programmed page carries
an OOB header with (kind, lba, epoch, seq), segments carry their
allocation sequence number in their header page, and snapshot/trim
operations left synchronous notes behind.

The generic driver here scans the media (timed: one OOB read per page
plus per-packet replay CPU) and hands the sorted packet lists to the
FTL's ``_rebuild_state`` hook — the base FTL folds every data packet
into a single winners map; the ioSnap layer overrides the hook with the
two-phase snapshot-aware reconstruction of §5.5.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, Generator, List, Optional, Tuple

from repro.errors import EraseFailError, TornPageError, UncorrectableError
from repro.faults.damage import DamageEntry
from repro.ftl.log import SegmentState
from repro.ftl.packet import decode_note
from repro.nand.oob import NOTE_KINDS, OobHeader, PageKind
from repro.torture import sites

if TYPE_CHECKING:  # pragma: no cover
    from repro.ftl.vsl import VslDevice


@dataclass(frozen=True)
class ScannedPacket:
    """One packet found on the log during a scan."""

    ppn: int
    header: OobHeader
    note: object = None  # decoded note dataclass for NOTE_* pages


def _repair_segment(ftl: "VslDevice", seg) -> Generator:
    """Finish an interrupted erase / scrub a torn segment header.

    A power cut can leave a segment with (a) some blocks erased and
    some not (cut between the cleaner's per-block erases) or (b) a
    torn or non-header first page.  Either way nothing in it is
    recoverable — the cleaner only erases after relocating all live
    data — so complete the erase and hand the segment back as FREE.

    Returns False when the medium refused an erase (the segment must
    come back RETIRED instead of FREE).
    """
    pages_per_block = ftl.nand.geometry.pages_per_block
    first_block = seg.first_ppn // pages_per_block
    retired = False
    for block in range(first_block, first_block + ftl.log.blocks_per_segment):
        if not ftl.nand.array.block_is_erased(block):
            try:
                yield from ftl.nand.erase_block(block,
                                                site=sites.RECOVERY_ERASE)
            except EraseFailError:
                # Grown-bad mid-repair: nothing recoverable was in the
                # segment anyway; retire it from circulation.
                retired = True
    return not retired


def scan_log(ftl: "VslDevice") -> Generator:
    """Read every programmed page's header, in log order.

    Returns ``(packets, seg_states, next_seg_seq)`` where ``packets``
    is ordered by (segment allocation seq, offset) and ``seg_states``
    is the :meth:`repro.ftl.log.Log.adopt_state` input.

    Power-cut residue is tolerated: a torn page ends its segment's
    packet extent (the slot is consumed but carries nothing), and a
    segment whose header page is missing or torn while data remains —
    an interrupted erase — is erased the rest of the way and returned
    to the free pool.

    Media faults are tolerated too: an uncorrectable packet header is
    recorded in the damage manifest and skipped (unlike a torn page it
    does NOT end the extent — pages after it programmed fine); an
    uncorrectable *segment* header makes the whole segment
    unattributable, so it is scrubbed like a torn one; an erase that
    fails during repair retires the segment.
    """
    found: List[Tuple[int, List[ScannedPacket], int]] = []
    seg_states: Dict[int, Tuple[str, int, int]] = {}
    array = ftl.nand.array
    pages_per_block = ftl.nand.geometry.pages_per_block
    for seg in ftl.log.segments:
        if not array.is_programmed(seg.first_ppn):
            first_block = seg.first_ppn // pages_per_block
            blocks = range(first_block,
                           first_block + ftl.log.blocks_per_segment)
            erased_ok = True
            if not all(array.block_is_erased(b) for b in blocks):
                # Interrupted erase: the header block went first but
                # later blocks still hold stale pages.
                erased_ok = yield from _repair_segment(ftl, seg)
            seg_states[seg.index] = (
                (SegmentState.FREE if erased_ok
                 else SegmentState.RETIRED).value, -1, 0)
            continue
        try:
            first = yield from ftl.nand.read_header(seg.first_ppn,
                                                    salvage=True)
        except TornPageError:
            first = None  # cut mid segment-header program
        else:
            if first is None:
                # ECC exhausted on the segment header: every packet in
                # the segment just lost its log position.
                ftl.damage.record(DamageEntry(
                    ppn=seg.first_ppn, reason="scan-seg-header",
                    segment=seg.index, at_ns=ftl.kernel.now, lost=True))
        if first is None or first.kind is not PageKind.SEGMENT_HEADER:
            # Torn, half-erased, foreign, or unreadable segment:
            # nothing here is attributable to a log position; scrub it.
            erased_ok = yield from _repair_segment(ftl, seg)
            seg_states[seg.index] = (
                (SegmentState.FREE if erased_ok
                 else SegmentState.RETIRED).value, -1, 0)
            continue
        seg_seq = first.lba
        packets: List[ScannedPacket] = []
        offset = 1
        while (seg.first_ppn + offset < seg.end_ppn
               and array.is_programmed(seg.first_ppn + offset)):
            ppn = seg.first_ppn + offset
            try:
                header = yield from ftl.nand.read_header(ppn, salvage=True)
            except TornPageError:
                if array.is_failed(ppn):
                    # Program-fail residue: unlike a power-cut torn
                    # page the log *continued* — the append retried on
                    # the next PPN — so later packets in this segment
                    # are real.  Step over the burned slot.
                    offset += 1
                    continue
                # The cut hit mid-program of this page: the slot is
                # consumed (keep it inside the written extent so the
                # bookkeeping matches the media) but the packet never
                # happened.  Nothing can follow it: appends serialize
                # on their head, each head's programs drain through the
                # owning die's FIFO queue, and a segment never spans
                # dies — so programs land in submission order within
                # every segment (see docs/parallel.md).
                offset += 1
                break
            if header is None:
                # Uncorrectable header: the packet's content is gone
                # but — unlike a torn page — later pages in the segment
                # programmed fine, so keep scanning past it.
                ftl.damage.record(DamageEntry(
                    ppn=ppn, reason="scan-header", segment=seg.index,
                    at_ns=ftl.kernel.now, lost=True))
                offset += 1
                continue
            yield ftl.config.cpu.replay_packet_ns
            note = None
            if header.kind in NOTE_KINDS:
                try:
                    record = yield from ftl.nand.read_page(ppn)
                except UncorrectableError:
                    # The note's payload rotted.  Without it the note
                    # cannot be replayed; record the casualty and drop
                    # the packet entirely.
                    ftl.damage.record(DamageEntry(
                        ppn=ppn, reason="scan-note", epoch=header.epoch,
                        segment=seg.index, at_ns=ftl.kernel.now,
                        lost=True))
                    offset += 1
                    continue
                note = decode_note(header.kind, record.data[:header.length])
            packets.append(ScannedPacket(ppn=ppn, header=header, note=note))
            offset += 1
        # Recovered segments all come back CLOSED; the next append
        # opens a fresh segment rather than risking a partially
        # programmed one.
        seg_states[seg.index] = (SegmentState.CLOSED.value, seg_seq, offset)
        found.append((seg_seq, packets, seg.index))

    found.sort(key=lambda item: item[0])
    ordered: List[ScannedPacket] = []
    for _seq, packets, _idx in found:
        ordered.extend(packets)
    next_seg_seq = (max(item[0] for item in found) + 1) if found else 0
    return ordered, seg_states, next_seg_seq


def recover(ftl: "VslDevice") -> Generator:
    """Full crash recovery: scan, restore log bookkeeping, rebuild state."""
    packets, seg_states, next_seg_seq = yield from scan_log(ftl)
    ftl.log.adopt_state(seg_states, next_seg_seq, open_heads=None)

    max_seq = max((p.header.seq for p in packets), default=0)
    ftl._next_seq = max_seq

    for packet in packets:
        if packet.note is not None:
            ftl._note_registry[packet.ppn] = packet.note

    yield from ftl._rebuild_state(packets)


def fold_winners(packets: List[ScannedPacket],
                 epoch_filter: Optional[frozenset] = None,
                 ) -> Dict[int, Tuple[int, int]]:
    """Resolve packets to per-LBA winners: {lba: (seq, ppn)}.

    Later sequence numbers win; trim notes kill older data.  When
    ``epoch_filter`` is given, only packets written in those epochs
    participate (this is how a snapshot's state is isolated from
    sibling branches).
    """
    best: Dict[int, Tuple[int, int]] = {}
    trims: Dict[int, int] = {}
    for packet in packets:
        header = packet.header
        if epoch_filter is not None and header.epoch not in epoch_filter:
            continue
        if header.kind is PageKind.DATA:
            # ">=": cleaner copy-forwards preserve (lba, seq); of two
            # identical copies prefer the later log position, matching
            # the activation scan's tie-break.
            current = best.get(header.lba)
            if current is None or header.seq >= current[0]:
                best[header.lba] = (header.seq, packet.ppn)
        elif header.kind is PageKind.NOTE_TRIM:
            if header.seq > trims.get(header.lba, -1):
                trims[header.lba] = header.seq
    for lba, trim_seq in trims.items():
        entry = best.get(lba)
        if entry is not None and entry[0] < trim_seq:
            del best[lba]
    return best

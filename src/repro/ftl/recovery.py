"""Crash recovery by log scan (paper §5.5).

After an unclean shutdown there is no checkpoint to restore, so the FTL
is rebuilt from what the log itself says: every programmed page carries
an OOB header with (kind, lba, epoch, seq), segments carry their
allocation sequence number in their header page, and snapshot/trim
operations left synchronous notes behind.

The generic driver here scans the media (timed: one OOB read per page
plus per-packet replay CPU) and hands the sorted packet lists to the
FTL's ``_rebuild_state`` hook — the base FTL folds every data packet
into a single winners map; the ioSnap layer overrides the hook with the
two-phase snapshot-aware reconstruction of §5.5.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, Generator, List, Optional, Tuple

from repro.errors import TornPageError
from repro.ftl.log import SegmentState
from repro.ftl.packet import decode_note
from repro.nand.oob import NOTE_KINDS, OobHeader, PageKind
from repro.torture import sites

if TYPE_CHECKING:  # pragma: no cover
    from repro.ftl.vsl import VslDevice


@dataclass(frozen=True)
class ScannedPacket:
    """One packet found on the log during a scan."""

    ppn: int
    header: OobHeader
    note: object = None  # decoded note dataclass for NOTE_* pages


def _repair_segment(ftl: "VslDevice", seg) -> Generator:
    """Finish an interrupted erase / scrub a torn segment header.

    A power cut can leave a segment with (a) some blocks erased and
    some not (cut between the cleaner's per-block erases) or (b) a
    torn or non-header first page.  Either way nothing in it is
    recoverable — the cleaner only erases after relocating all live
    data — so complete the erase and hand the segment back as FREE.
    """
    pages_per_block = ftl.nand.geometry.pages_per_block
    first_block = seg.first_ppn // pages_per_block
    for block in range(first_block, first_block + ftl.log.blocks_per_segment):
        if not ftl.nand.array.block_is_erased(block):
            yield from ftl.nand.erase_block(block, site=sites.RECOVERY_ERASE)


def scan_log(ftl: "VslDevice") -> Generator:
    """Read every programmed page's header, in log order.

    Returns ``(packets, seg_states, next_seg_seq)`` where ``packets``
    is ordered by (segment allocation seq, offset) and ``seg_states``
    is the :meth:`repro.ftl.log.Log.adopt_state` input.

    Power-cut residue is tolerated: a torn page ends its segment's
    packet extent (the slot is consumed but carries nothing), and a
    segment whose header page is missing or torn while data remains —
    an interrupted erase — is erased the rest of the way and returned
    to the free pool.
    """
    found: List[Tuple[int, List[ScannedPacket], int]] = []
    seg_states: Dict[int, Tuple[str, int, int]] = {}
    array = ftl.nand.array
    pages_per_block = ftl.nand.geometry.pages_per_block
    for seg in ftl.log.segments:
        if not array.is_programmed(seg.first_ppn):
            first_block = seg.first_ppn // pages_per_block
            blocks = range(first_block,
                           first_block + ftl.log.blocks_per_segment)
            if not all(array.block_is_erased(b) for b in blocks):
                # Interrupted erase: the header block went first but
                # later blocks still hold stale pages.
                yield from _repair_segment(ftl, seg)
            seg_states[seg.index] = (SegmentState.FREE.value, -1, 0)
            continue
        try:
            first = yield from ftl.nand.read_header(seg.first_ppn)
        except TornPageError:
            first = None  # cut mid segment-header program
        if first is None or first.kind is not PageKind.SEGMENT_HEADER:
            # Torn, half-erased, or foreign segment: nothing here is
            # attributable to a log position; scrub it.
            yield from _repair_segment(ftl, seg)
            seg_states[seg.index] = (SegmentState.FREE.value, -1, 0)
            continue
        seg_seq = first.lba
        packets: List[ScannedPacket] = []
        offset = 1
        while (seg.first_ppn + offset < seg.end_ppn
               and array.is_programmed(seg.first_ppn + offset)):
            ppn = seg.first_ppn + offset
            try:
                header = yield from ftl.nand.read_header(ppn)
            except TornPageError:
                # The cut hit mid-program of this page: the slot is
                # consumed (keep it inside the written extent so the
                # bookkeeping matches the media) but the packet never
                # happened.  Appends serialize on the head, so nothing
                # can follow it.
                offset += 1
                break
            yield ftl.config.cpu.replay_packet_ns
            note = None
            if header.kind in NOTE_KINDS:
                record = yield from ftl.nand.read_page(ppn)
                note = decode_note(header.kind, record.data[:header.length])
            packets.append(ScannedPacket(ppn=ppn, header=header, note=note))
            offset += 1
        # Recovered segments all come back CLOSED; the next append
        # opens a fresh segment rather than risking a partially
        # programmed one.
        seg_states[seg.index] = (SegmentState.CLOSED.value, seg_seq, offset)
        found.append((seg_seq, packets, seg.index))

    found.sort(key=lambda item: item[0])
    ordered: List[ScannedPacket] = []
    for _seq, packets, _idx in found:
        ordered.extend(packets)
    next_seg_seq = (max(item[0] for item in found) + 1) if found else 0
    return ordered, seg_states, next_seg_seq


def recover(ftl: "VslDevice") -> Generator:
    """Full crash recovery: scan, restore log bookkeeping, rebuild state."""
    packets, seg_states, next_seg_seq = yield from scan_log(ftl)
    ftl.log.adopt_state(seg_states, next_seg_seq, open_heads=None)

    max_seq = max((p.header.seq for p in packets), default=0)
    ftl._next_seq = max_seq

    for packet in packets:
        if packet.note is not None:
            ftl._note_registry[packet.ppn] = packet.note

    yield from ftl._rebuild_state(packets)


def fold_winners(packets: List[ScannedPacket],
                 epoch_filter: Optional[frozenset] = None,
                 ) -> Dict[int, Tuple[int, int]]:
    """Resolve packets to per-LBA winners: {lba: (seq, ppn)}.

    Later sequence numbers win; trim notes kill older data.  When
    ``epoch_filter`` is given, only packets written in those epochs
    participate (this is how a snapshot's state is isolated from
    sibling branches).
    """
    best: Dict[int, Tuple[int, int]] = {}
    trims: Dict[int, int] = {}
    for packet in packets:
        header = packet.header
        if epoch_filter is not None and header.epoch not in epoch_filter:
            continue
        if header.kind is PageKind.DATA:
            # ">=": cleaner copy-forwards preserve (lba, seq); of two
            # identical copies prefer the later log position, matching
            # the activation scan's tie-break.
            current = best.get(header.lba)
            if current is None or header.seq >= current[0]:
                best[header.lba] = (header.seq, packet.ppn)
        elif header.kind is PageKind.NOTE_TRIM:
            if header.seq > trims.get(header.lba, -1):
                trims[header.lba] = header.seq
    for lba, trim_seq in trims.items():
        entry = best.get(lba)
        if entry is not None and entry[0] < trim_seq:
            del best[lba]
    return best

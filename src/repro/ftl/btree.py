"""B+tree forward map: logical block address -> physical page number.

The Fusion-io VSL keeps its forward map in "a variant of a B+tree,
running in host memory" (paper §5.2.2).  This module implements that
map with the two properties the paper's Table 3 measures:

- :meth:`BPlusTree.node_count` / :meth:`BPlusTree.memory_bytes` expose
  the in-memory footprint of a tree;
- :meth:`BPlusTree.bulk_load` builds a densely packed tree from sorted
  items — this is why a freshly *activated* snapshot's tree is more
  compact than the fragmented active tree with identical contents.

Keys and values are non-negative integers.  Deletion removes the key
from its leaf without rebalancing (an FTL map only deletes on trim, so
sustained delete-heavy rebalancing is not this structure's workload).
"""

from __future__ import annotations

import bisect
from typing import Iterable, Iterator, List, Optional, Tuple

_DEFAULT_ORDER = 64

# Rough per-node host-memory cost used for Table 3 style reporting:
# object header + keys/children arrays at 8 bytes per slot.
_NODE_FIXED_BYTES = 96
_BYTES_PER_SLOT = 16


class _Node:
    __slots__ = ("keys", "children", "values", "next_leaf", "is_leaf")

    def __init__(self, is_leaf: bool) -> None:
        self.is_leaf = is_leaf
        self.keys: List[int] = []
        self.children: List["_Node"] = []   # internal nodes only
        self.values: List[int] = []         # leaves only
        self.next_leaf: Optional["_Node"] = None

    def slot_count(self) -> int:
        return len(self.keys) + (len(self.values) if self.is_leaf
                                 else len(self.children))


# The C implementations from the bisect module; keeping the old names
# so the callers below read the same.
_bisect_right = bisect.bisect_right
_bisect_left = bisect.bisect_left


class BPlusTree:
    """An order-``order`` B+tree with linked leaves."""

    def __init__(self, order: int = _DEFAULT_ORDER) -> None:
        if order < 4:
            raise ValueError(f"order must be >= 4, got {order}")
        self.order = order
        self._root: _Node = _Node(is_leaf=True)
        self._size = 0
        self._node_count = 1

    # -- queries -----------------------------------------------------------
    def __len__(self) -> int:
        return self._size

    def __contains__(self, key: int) -> bool:
        return self.get(key) is not None

    def get(self, key: int) -> Optional[int]:
        """Value for ``key``, or None."""
        node = self._descend(key)
        idx = _bisect_left(node.keys, key)
        if idx < len(node.keys) and node.keys[idx] == key:
            return node.values[idx]
        return None

    def items(self) -> Iterator[Tuple[int, int]]:
        """All (key, value) pairs in ascending key order."""
        node: Optional[_Node] = self._leftmost_leaf()
        while node is not None:
            yield from zip(node.keys, node.values)
            node = node.next_leaf

    def range_items(self, start: int, end: int) -> Iterator[Tuple[int, int]]:
        """(key, value) pairs with start <= key < end, ascending."""
        node = self._descend(start)
        idx = _bisect_left(node.keys, start)
        while node is not None:
            while idx < len(node.keys):
                key = node.keys[idx]
                if key >= end:
                    return
                yield key, node.values[idx]
                idx += 1
            node = node.next_leaf
            idx = 0

    def depth(self) -> int:
        depth = 1
        node = self._root
        while not node.is_leaf:
            node = node.children[0]
            depth += 1
        return depth

    def node_count(self) -> int:
        return self._node_count

    def memory_bytes(self) -> int:
        """Estimated host-memory footprint of the tree structure.

        Nodes are charged at full capacity (kernel implementations
        allocate fixed-size node arrays), so a sparsely-filled tree —
        e.g. the active tree after random inserts — costs measurably
        more than a bulk-loaded tree with identical contents.
        """
        per_node = _NODE_FIXED_BYTES + 2 * self.order * _BYTES_PER_SLOT
        return self._node_count * per_node

    def fill_factor(self) -> float:
        """Mean leaf occupancy relative to capacity (order - 1 keys)."""
        leaves = 0
        used = 0
        node: Optional[_Node] = self._leftmost_leaf()
        while node is not None:
            leaves += 1
            used += len(node.keys)
            node = node.next_leaf
        if leaves == 0:
            return 0.0
        return used / (leaves * (self.order - 1))

    # -- mutation ------------------------------------------------------------
    def insert(self, key: int, value: int) -> Optional[int]:
        """Insert or overwrite; returns the previous value, or None."""
        if key < 0:
            raise ValueError(f"keys must be non-negative, got {key}")
        split = self._insert(self._root, key, value)
        if isinstance(split, tuple):
            sep, right = split
            new_root = _Node(is_leaf=False)
            new_root.keys = [sep]
            new_root.children = [self._root, right]
            self._root = new_root
            self._node_count += 1
            return None
        return split

    def delete(self, key: int) -> Optional[int]:
        """Remove ``key``; returns its value, or None if absent.

        Leaves that become empty stay linked in place (lookups and
        iteration remain correct; a later insert refills them).  An FTL
        map deletes only on trim, so we trade rebalancing complexity
        for a small, bounded memory overhead.
        """
        node = self._descend(key)
        idx = _bisect_left(node.keys, key)
        if idx >= len(node.keys) or node.keys[idx] != key:
            return None
        value = node.values.pop(idx)
        node.keys.pop(idx)
        self._size -= 1
        return value

    @classmethod
    def bulk_load(cls, items: Iterable[Tuple[int, int]],
                  order: int = _DEFAULT_ORDER,
                  fill_factor: float = 1.0) -> "BPlusTree":
        """Build a packed tree from (key, value) pairs sorted by key.

        ``fill_factor`` sets leaf/internal occupancy (1.0 = fully
        packed), mirroring how snapshot activation rebuilds a forward
        map "as compact as the tree can be" (paper §6.2.2).
        """
        if not 0.1 <= fill_factor <= 1.0:
            raise ValueError(f"fill_factor out of range: {fill_factor}")
        tree = cls(order=order)
        per_leaf = max(1, int((order - 1) * fill_factor))
        leaves: List[_Node] = []
        current = _Node(is_leaf=True)
        last_key: Optional[int] = None
        size = 0
        for key, value in items:
            if last_key is not None and key <= last_key:
                raise ValueError("bulk_load requires strictly ascending keys")
            last_key = key
            if len(current.keys) >= per_leaf:
                leaves.append(current)
                nxt = _Node(is_leaf=True)
                current.next_leaf = nxt
                current = nxt
            current.keys.append(key)
            current.values.append(value)
            size += 1
        leaves.append(current)

        level: List[_Node] = leaves
        per_internal = max(2, int(order * fill_factor))
        while len(level) > 1:
            parents: List[_Node] = []
            i = 0
            while i < len(level):
                group = level[i:i + per_internal]
                if len(group) == 1 and parents:
                    # Avoid a 1-child parent: fold into previous group.
                    parents[-1].children.append(group[0])
                    parents[-1].keys.append(_subtree_min_key(group[0]))
                    break
                parent = _Node(is_leaf=False)
                parent.children = group
                parent.keys = [_subtree_min_key(child) for child in group[1:]]
                parents.append(parent)
                i += per_internal
            level = parents
        tree._root = level[0]
        tree._size = size
        tree._node_count = sum(1 for _ in tree._walk_nodes())
        return tree

    # -- internals -------------------------------------------------------
    def _descend(self, key: int) -> _Node:
        node = self._root
        while not node.is_leaf:
            node = node.children[_bisect_right(node.keys, key)]
        return node

    def _leftmost_leaf(self) -> _Node:
        node = self._root
        while not node.is_leaf:
            node = node.children[0]
        return node

    def _walk_nodes(self) -> Iterator[_Node]:
        stack = [self._root]
        while stack:
            node = stack.pop()
            yield node
            if not node.is_leaf:
                stack.extend(node.children)

    def _insert(self, node: _Node, key: int, value: int):
        """Recursive insert; returns old value, None, or a (sep, node) split."""
        if node.is_leaf:
            idx = _bisect_left(node.keys, key)
            if idx < len(node.keys) and node.keys[idx] == key:
                old = node.values[idx]
                node.values[idx] = value
                return old
            node.keys.insert(idx, key)
            node.values.insert(idx, value)
            self._size += 1
            if len(node.keys) >= self.order:
                return self._split_leaf(node)
            return None

        idx = _bisect_right(node.keys, key)
        result = self._insert(node.children[idx], key, value)
        if isinstance(result, tuple):
            sep, right = result
            node.keys.insert(idx, sep)
            node.children.insert(idx + 1, right)
            if len(node.children) > self.order:
                return self._split_internal(node)
            return None
        return result

    def _split_leaf(self, node: _Node) -> Tuple[int, _Node]:
        mid = len(node.keys) // 2
        right = _Node(is_leaf=True)
        right.keys = node.keys[mid:]
        right.values = node.values[mid:]
        del node.keys[mid:]
        del node.values[mid:]
        right.next_leaf = node.next_leaf
        node.next_leaf = right
        self._node_count += 1
        return right.keys[0], right

    def _split_internal(self, node: _Node) -> Tuple[int, _Node]:
        mid = len(node.keys) // 2
        sep = node.keys[mid]
        right = _Node(is_leaf=False)
        right.keys = node.keys[mid + 1:]
        right.children = node.children[mid + 1:]
        del node.keys[mid:]
        del node.children[mid + 1:]
        self._node_count += 1
        return sep, right

def _subtree_min_key(node: _Node) -> int:
    while not node.is_leaf:
        node = node.children[0]
    return node.keys[0]

"""Background media scrubber: rewrite pages before they go uncorrectable.

A patrol process in the spirit of the paper's rate-limited background
machinery (§5.6): it walks the log's occupied segments a few pages per
pass, asks the fault model how many bit errors each live page has
accumulated, and relocates any page whose count crossed the scrub
threshold — *before* retention and read-disturb push it past the ECC's
retry ladder.

Relocation rides the same machinery as the cleaner's copy-forward
(``log.append`` + ``_relocate``/``_relocate_note`` hooks), which makes
the scrubber snapshot-aware for free: ioSnap's ``_relocate`` fixes the
validity bit of *every* epoch that references the old PPN, so a
scrubbed snapshot-only block keeps each epoch's bit.  Scrub copies are
tagged with their own crash site (``scrub.copy``) so the torture sweep
can cut mid-scrub.

Pacing goes through :class:`repro.ftl.ratelimit.DutyCycleLimiter` —
the paper's "x usec work / y msec sleep" knob — so patrols do not
stall foreground I/O.  The scrubber only runs when the device has a
fault model attached; on a perfect medium it is never spawned.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, Generator, Optional

from repro.errors import OutOfSpaceError, UncorrectableError
from repro.ftl.log import stripe_head
from repro.ftl.ratelimit import DutyCycleLimiter
from repro.nand.oob import PageKind
from repro.sim.stats import NS_PER_MS, Counters
from repro.torture import sites

if TYPE_CHECKING:  # pragma: no cover
    from repro.ftl.vsl import VslDevice


class Scrubber:
    """Patrol-read live pages; relocate the ones aging toward death."""

    def __init__(self, ftl: "VslDevice") -> None:
        self.ftl = ftl
        self.kernel = ftl.kernel
        cfg = ftl.config
        self.limiter = DutyCycleLimiter.from_paper_knob(
            self.kernel, cfg.scrub_work_us, cfg.scrub_sleep_ms)
        self._stopped = False
        # Patrol cursor per worker: one worker per stripe (or a single
        # global worker under key None).  Counters are shared.
        self._cursors: Dict[Optional[int], int] = {}
        self.counters = Counters("passes", "pages_scanned",
                                 "pages_relocated", "notes_relocated",
                                 "pages_lost")

    @property
    def _cursor(self) -> int:
        """The global worker's patrol cursor (compat/observability)."""
        return self._cursors.get(None, 0)

    def stop(self) -> None:
        self._stopped = True

    @property
    def threshold_bits(self) -> int:
        """Error count that triggers relocation.

        Defaults to the ECC's base correction budget: scrub as soon as
        a read would need the retry ladder, well before the ladder's
        reach runs out.
        """
        configured = self.ftl.config.scrub_threshold_bits
        if configured > 0:
            return configured
        faults = self.ftl.nand.faults
        if faults is None:
            return 1 << 30
        return faults.ecc.config.correctable_bits

    # -- main loop ---------------------------------------------------------
    def run(self, stripe: Optional[int] = None) -> Generator:
        """Background worker: one bounded patrol pass per interval.

        One worker is spawned per stripe; each patrols only segments
        homed on its stripe and relocates onto that stripe's GC head,
        so concurrent patrols overlap across dies instead of queueing
        behind each other (and behind the cleaner) on one head.  A
        1-stripe device gets the classic single global patrol.
        """
        interval_ns = int(self.ftl.config.scrub_interval_ms * NS_PER_MS)
        while not self._stopped:
            yield interval_ns
            if self._stopped:
                return
            try:
                yield from self.scrub_pass(stripe)
            except OutOfSpaceError:
                # No room to relocate into right now; the cleaner was
                # already kicked by the failed allocation.  Try again
                # next interval.
                continue

    # -- one pass ----------------------------------------------------------
    def scrub_pass(self, stripe: Optional[int] = None) -> Generator:
        """Patrol up to the pass budget of pages, round-robin.

        With ``stripe`` given, only that stripe's segments are
        patrolled and the pass budget is split evenly across stripes.
        """
        ftl = self.ftl
        if ftl.nand.faults is None:
            return
        self.counters.bump("passes")
        budget = ftl.config.scrub_pages_per_pass
        if stripe is not None:
            budget = max(1, budget // ftl.log.num_stripes)
        seg_count = ftl.log.segment_count
        cursor = self._cursors.get(stripe, 0)
        scanned = 0
        wrapped = True
        for step in range(seg_count):
            if scanned >= budget or self._stopped:
                wrapped = False
                break
            index = (cursor + step) % seg_count
            if stripe is not None \
                    and ftl.log.stripe_of_segment(index) != stripe:
                continue
            seg = ftl.log.segments[index]
            if seg.seq < 0:
                continue  # FREE or RETIRED: nothing live to patrol
            for ppn in seg.written_ppns():
                if scanned >= budget or self._stopped:
                    # Resume this segment on the next pass.
                    self._cursors[stripe] = index
                    break
                scanned += 1
                yield from self._patrol_page(ppn, stripe)
            else:
                continue
            wrapped = False
            break
        if wrapped:
            self._cursors[stripe] = 0
        self.counters.bump("pages_scanned", scanned)

    def _patrol_page(self, ppn: int,
                     stripe: Optional[int] = None) -> Generator:
        ftl = self.ftl
        nand = ftl.nand
        array = nand.array
        if not array.is_programmed(ppn) or array.is_torn(ppn):
            return
        bits = nand.media_error_bits(ppn)
        if bits < self.threshold_bits:
            return
        # Bookkeeping peek at the OOB header to decide liveness (the
        # cleaner's note pass does the same); the relocation below does
        # the honest timed read.
        header = array.read_header(ppn)
        if header.kind is PageKind.DATA:
            live = ftl._block_still_valid(ppn)
        elif header.kind is PageKind.SEGMENT_HEADER:
            live = False  # not relocatable; dies with its segment
        else:
            live = (ppn in ftl._note_registry
                    and ftl._note_is_live(ppn, header))
        if not live:
            return
        started = self.kernel.now
        try:
            record = yield from nand.read_page(ppn)
        except UncorrectableError:
            # Too late for this page: the patrol found it after the
            # ladder's reach ran out.  Account the casualty; the
            # cleaner will quarantine the segment.
            ftl.record_media_loss(ppn, reason="scrub", header=header)
            self.counters.bump("pages_lost")
            return
        gc_stripe = (stripe if stripe is not None
                     else ftl.log.stripe_of_segment(
                         ppn // ftl.log.segment_pages))
        if header.kind is PageKind.DATA:
            new_ppn, _done = yield from ftl.log.append(
                record.header, record.data, privileged=True,
                head=stripe_head(ftl._gc_head_for(ppn, record.header),
                                 gc_stripe),
                site=sites.SCRUB_COPY)
            ftl._on_packet_appended(new_ppn, record.header)
            yield from ftl._relocate(ppn, new_ppn, record.header)
            self.counters.bump("pages_relocated")
        else:
            new_ppn, _done = yield from ftl.log.append(
                record.header, record.data, privileged=True,
                head=stripe_head("gc", gc_stripe),
                site=sites.SCRUB_COPY)
            ftl._on_packet_appended(new_ppn, record.header)
            ftl._relocate_note(ppn, new_ppn)
            self.counters.bump("notes_relocated")
        yield from self.limiter.pace(self.kernel.now - started)

"""The base FTL: a simulation of the Fusion-io Virtual Storage Layer.

:class:`VslDevice` is the "vanilla" remap-on-write FTL the paper
describes in §5.2: a host-memory B+tree forward map, a validity bitmap,
log-structured writes, and a background segment cleaner.  The ioSnap
layer (:mod:`repro.core`) subclasses it, overriding the hook methods
grouped at the bottom of the class.

Two calling conventions exist for every I/O operation:

- ``read/write/trim(...)`` — synchronous façade; runs the simulation
  until the operation completes.  For straight-line code (tests,
  examples).
- ``read_proc/write_proc/trim_proc(...)`` — generator processes to be
  spawned on the kernel.  For workloads with concurrency (benchmarks
  measuring interference).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Generator, List, Optional, Tuple

from repro.errors import (
    DegradedModeError,
    FtlError,
    LbaError,
    UncorrectableError,
)
from repro.faults.damage import DamageEntry, DamageReport
from repro.faults.model import MediaFaultModel
from repro.ftl.btree import BPlusTree
from repro.ftl.cleaner import SegmentCleaner
from repro.ftl.log import Log, Segment
from repro.ftl.packet import TrimNote, decode_note, encode_note
from repro.ftl.scrub import Scrubber
from repro.ftl.validity import ValidityBitmap
from repro.nand.device import NandDevice
from repro.nand.geometry import NandConfig
from repro.nand.oob import OobHeader, PageKind
from repro.races import runtime as races
from repro.sim import Kernel


@dataclass(frozen=True)
class CpuCosts:
    """Host CPU costs charged to virtual time, in nanoseconds."""

    replay_packet_ns: int = 300        # per packet during scans/recovery
    map_bulk_insert_ns: int = 1_500    # per entry when (re)building a map
    bitmap_cow_ns: int = 20_000        # per validity bitmap page copied
    bitmap_merge_page_ns: int = 2_000  # per bitmap page OR'd in a merge
    bitmap_adjust_ns: int = 200        # per epoch bit fixed on copy-forward
    unmapped_read_ns: int = 1_000      # read of a never-written LBA


@dataclass
class FtlConfig:
    """Tunables for the FTL and its background machinery."""

    blocks_per_segment: int = 1
    op_ratio: float = 0.25             # reserved physical fraction
    # Foreground append heads (the multi-queue data path).  0 means
    # "auto": one user head per channel, which keeps every channel's
    # dies busy.  1 restores the classic single-head log.
    parallel_heads: int = 0
    gc_low_watermark: int = 3          # kick cleaner below this many free
    gc_reserve_segments: int = 2
    bitmap_page_bytes: int = 64        # validity CoW granularity
    sync_writes: bool = False
    map_order: int = 64
    # Flash-resident forward map (repro.ftl.mapcache).  0 keeps the
    # classic all-RAM B+ tree; > 0 bounds resident translation pages
    # to that many cache slots, with the map itself living on flash
    # behind a GTD.  ``map_span`` is LBAs per translation page.
    map_cache_pages: int = 0
    map_span: int = 64
    map_dirty_batch: int = 8
    cleaner_budget_ms: float = 20.0    # pacing budget per segment clean
    readahead_pages: int = 8           # 0 disables sequential readahead
    # Segment selection: "greedy" (most reclaimable space) or
    # "cost_benefit" (LFS-style (1-u)*age/(1+u): prefers old, cold
    # segments even when slightly fuller — lower long-run write
    # amplification under skewed workloads).
    gc_policy: str = "greedy"
    # Background scrubber (media-fault patrol; only runs when the NAND
    # device carries a fault model).  threshold_bits == 0 means "auto":
    # relocate once a page needs more correction than the ECC's base
    # budget (i.e. as soon as reads start hitting the retry ladder).
    scrub_interval_ms: float = 50.0
    scrub_pages_per_pass: int = 64
    scrub_threshold_bits: int = 0
    scrub_work_us: float = 100.0       # DutyCycleLimiter work quantum
    scrub_sleep_ms: float = 1.0        # ... and sleep per quantum
    cpu: CpuCosts = field(default_factory=CpuCosts)

    def __post_init__(self) -> None:
        if not 0.0 < self.op_ratio < 0.9:
            raise ValueError(f"op_ratio out of range: {self.op_ratio}")
        if self.parallel_heads < 0:
            raise ValueError("parallel_heads must be >= 0 (0 = auto)")
        if self.gc_low_watermark < 1:
            raise ValueError("gc_low_watermark must be >= 1")
        if self.gc_policy not in ("greedy", "cost_benefit"):
            raise ValueError(f"unknown gc_policy {self.gc_policy!r}")
        if self.scrub_interval_ms <= 0:
            raise ValueError("scrub_interval_ms must be > 0")
        if self.scrub_pages_per_pass < 1:
            raise ValueError("scrub_pages_per_pass must be >= 1")
        if self.scrub_threshold_bits < 0:
            raise ValueError("scrub_threshold_bits must be >= 0")
        if self.map_cache_pages < 0:
            raise ValueError("map_cache_pages must be >= 0 (0 = all-RAM)")
        if not 1 <= self.map_span <= 256:
            raise ValueError("map_span must be in [1, 256] "
                             "(one MAP packet must fit a flash page)")
        if self.map_dirty_batch < 1:
            raise ValueError("map_dirty_batch must be >= 1")


@dataclass
class FtlMetrics:
    """Observable counters for experiments."""

    writes: int = 0
    reads: int = 0
    trims: int = 0
    readahead_hits: int = 0
    bitmap_cow_copies: int = 0
    cow_timestamps: List[int] = field(default_factory=list)
    cleaner_runs: List[Dict[str, Any]] = field(default_factory=list)


class _ReadCache:
    """Tiny LRU page cache fed by sequential readahead."""

    def __init__(self, capacity: int) -> None:
        self.capacity = capacity
        self._entries: Dict[int, Any] = {}

    def get(self, ppn: int):
        record = self._entries.pop(ppn, None)
        if record is not None:
            self._entries[ppn] = record
        return record

    def put(self, ppn: int, record) -> None:
        if self.capacity <= 0:
            return
        self._entries.pop(ppn, None)
        self._entries[ppn] = record
        while len(self._entries) > self.capacity:
            self._entries.pop(next(iter(self._entries)))

    def invalidate_range(self, start_ppn: int, count: int) -> None:
        for ppn in range(start_ppn, start_ppn + count):
            self._entries.pop(ppn, None)


class VslDevice:
    """Log-structured remap-on-write FTL exposing a block interface."""

    CONFIG_CLS = FtlConfig
    # Config fields that define the on-media format: they must match
    # between the instance that formatted the device and any later
    # open, so they are persisted in the superblock.
    FORMAT_FIELDS = ("blocks_per_segment", "op_ratio", "bitmap_page_bytes")

    def __init__(self, kernel: Kernel, nand: NandDevice,
                 config: Optional[FtlConfig] = None) -> None:
        self.kernel = kernel
        self.nand = nand
        self.config = config if config is not None else self.CONFIG_CLS()
        self.log = Log(kernel, nand,
                       blocks_per_segment=self.config.blocks_per_segment,
                       reserve_segments=self.config.gc_reserve_segments,
                       user_heads=self.config.parallel_heads or None)
        self.block_size = nand.geometry.page_size
        usable_pages = nand.geometry.total_pages - self.log.segment_count
        self.num_lbas = int(usable_pages * (1.0 - self.config.op_ratio))
        # Structural floor on overprovisioning: the reserve, every
        # append head's open segment, and one cleaning-scratch segment
        # are never available to hold exported data.  Exporting more
        # would let a fully-utilized device wedge with every closed
        # segment 100% valid and nothing for the cleaner to reclaim.
        # GC heads are per stripe (two each when cold segregation is on).
        gc_heads_per_stripe = \
            2 if getattr(self.config, "gc_segregate_cold", False) else 1
        headroom = (self.log.reserve_target
                    + self.log.user_head_count
                    + self.log.num_stripes * gc_heads_per_stripe
                    + 1)
        if self.config.map_cache_pages > 0:
            # The flash-resident map adds its own append head (one more
            # permanently open segment) ...
            headroom += 1
        self._headroom = headroom
        hard_cap = (self.log.segment_count - headroom) * \
            (self.log.segment_pages - 1)
        self.num_lbas = min(self.num_lbas, hard_cap)
        if self.config.map_cache_pages > 0:
            # ... and its translation pages live *in* the log alongside
            # data: budget two log pages per translation page (the live
            # copy plus garbage awaiting cleaning) out of the exported
            # capacity, or a full device would have nowhere to keep its
            # own map.
            tpages = -(-self.num_lbas // self.config.map_span)
            self.num_lbas = min(self.num_lbas, hard_cap - 2 * tpages)
        if self.num_lbas < 1:
            raise FtlError("geometry too small to export any LBAs")
        self.map = self._make_map()
        self.metrics = FtlMetrics()
        self._next_seq = 0
        self._note_registry: Dict[int, Any] = {}   # ppn -> note dataclass
        self._read_cache = _ReadCache(capacity=4 * max(1, self.config.readahead_pages))
        self._prefetch_inflight: Dict[int, Any] = {}   # ppn -> Event
        self._last_read_lba: Optional[int] = None
        self._active_scans: List[List[Tuple[int, int, OobHeader]]] = []
        self._scan_done_waiters: List[Any] = []
        # Write gate: snapshot operations quiesce the data path so no
        # write straddles an epoch boundary (paper §5.8 step 1 — here
        # enforced by the device rather than trusted to applications).
        self._write_gate = None          # Event while closed, else None
        self._inflight_writes = 0
        self._drain_waiters: List[Any] = []
        self._make_structures()
        # Incremental per-segment valid-data counts (base FTL only;
        # ioSnap overrides the hooks and keeps a merged-count cache
        # instead).  Maintained on every validity set/clear so cleaner
        # candidate selection never re-scans segment bitmap ranges.
        self._seg_valid: List[int] = [0] * self.log.segment_count
        self.cleaner = SegmentCleaner(self)
        # One cleaner worker per stripe (a 1-stripe device gets the
        # classic single global loop).  _cleaner_proc stays pointing at
        # the first worker for compat with callers that join it.
        if self.log.num_stripes == 1:
            self._cleaner_procs = [
                kernel.spawn(self.cleaner.run(), name="cleaner")]
        else:
            self._cleaner_procs = [
                kernel.spawn(self.cleaner.run(stripe), name=f"cleaner-{stripe}")
                for stripe in range(self.log.num_stripes)]
        self._cleaner_proc = self._cleaner_procs[0]
        self.log.on_space_pressure = lambda: self.cleaner.maybe_kick(force=True)
        # Media-fault survival state: a manifest of what the medium
        # destroyed, and a read-only latch that trips when grown-bad
        # retirements eat the spare-capacity reserve.
        self.damage = DamageReport()
        self.degraded = False
        self.degraded_reason: Optional[str] = None
        self.log.on_segment_retired = self._note_segment_retired
        self.scrubber: Optional[Scrubber] = None
        self._scrub_procs: List[Any] = []
        self._scrub_proc = None
        if nand.faults is not None:
            self.scrubber = Scrubber(self)
            if self.log.num_stripes == 1:
                self._scrub_procs = [
                    kernel.spawn(self.scrubber.run(), name="scrubber")]
            else:
                self._scrub_procs = [
                    kernel.spawn(self.scrubber.run(stripe),
                                 name=f"scrubber-{stripe}")
                    for stripe in range(self.log.num_stripes)]
            self._scrub_proc = self._scrub_procs[0]
        self._open = True

    # ------------------------------------------------------------------
    # Construction / lifecycle
    # ------------------------------------------------------------------
    @classmethod
    def create(cls, kernel: Kernel, nand_config: Optional[NandConfig] = None,
               config: Optional[FtlConfig] = None,
               faults: Optional[MediaFaultModel] = None) -> "VslDevice":
        """Format a fresh device on new NAND (optionally faulty NAND)."""
        nand = NandDevice(kernel, nand_config, faults=faults)
        ftl = cls(kernel, nand, config)
        nand.superblock["format"] = {
            field: getattr(ftl.config, field) for field in cls.FORMAT_FIELDS
        }
        return ftl

    @classmethod
    def open(cls, kernel: Kernel, nand: NandDevice,
             config: Optional[FtlConfig] = None) -> "VslDevice":
        """Attach to existing NAND: restore a checkpoint or run recovery.

        A checkpoint that fails to restore (corruption, version skew)
        is not fatal: the log itself is the source of truth, so the
        open falls back to a full log-scan recovery.
        """
        import dataclasses

        from repro.errors import CheckpointError
        from repro.ftl.checkpoint import restore_checkpoint
        from repro.ftl.recovery import recover

        fmt = nand.superblock.get("format")
        if fmt:
            if config is None:
                config = dataclasses.replace(cls.CONFIG_CLS(), **fmt)
            else:
                mismatched = {
                    field: (getattr(config, field), fmt[field])
                    for field in fmt if getattr(config, field) != fmt[field]
                }
                if mismatched:
                    raise FtlError(
                        "config conflicts with the device's on-media "
                        f"format: {mismatched}")

        ftl = cls(kernel, nand, config)
        restored = False
        if nand.superblock.get("clean"):
            try:
                kernel.run_process(restore_checkpoint(ftl), name="restore")
                restored = True
            except CheckpointError:
                # Rebuild a pristine instance: the failed restore may
                # have partially mutated state.
                ftl.cleaner.stop()
                if ftl.scrubber is not None:
                    ftl.scrubber.stop()
                kernel.run()
                ftl = cls(kernel, nand, config)
            # Arm crash semantics: next open must recover unless we
            # shut down cleanly again.
            nand.superblock["clean"] = False
        if not restored:
            kernel.run_process(recover(ftl), name="recover")
        # Segments retired in a previous life count against the spare
        # reserve from the moment we attach.
        ftl._maybe_degrade()
        return ftl

    def shutdown(self) -> None:
        """Clean shutdown: checkpoint all state and stop the cleaner."""
        self._require_open()
        self.cleaner.stop()
        if self.scrubber is not None:
            self.scrubber.stop()
        self.kernel.run_process(self._shutdown_proc(), name="shutdown")
        self._open = False

    def _shutdown_proc(self) -> Generator:
        from repro.ftl.checkpoint import write_checkpoint

        for proc in self._cleaner_procs:
            if not proc.done:
                yield proc
        for proc in self._scrub_procs:
            if not proc.done:
                yield proc
        # Make headroom for the checkpoint pages before the cleaner is
        # gone; otherwise a nearly-full device cannot be shut down.
        yield from self.cleaner.ensure_free(
            max(self.config.gc_low_watermark, 2))
        yield from write_checkpoint(self)

    def crash(self) -> None:
        """Simulate power loss: stop everything, leave the media as-is."""
        self._require_open()
        self.cleaner.stop()
        if self.scrubber is not None:
            self.scrubber.stop()
        # stop() only takes effect at the loop top; a worker parked
        # mid-clean (or mid-patrol) would otherwise resume during the
        # next incarnation's recovery and mutate the shared media under
        # it.  A crash kills them where they stand.
        for proc in self._cleaner_procs + self._scrub_procs:
            proc.kill()
        # Programs still sitting in the submission queues are
        # controller RAM and die with the power; without this they
        # would drain onto the media *during recovery* of the next
        # incarnation (the queues live on the shared NAND device).
        self.nand.queues.discard_queued()
        self.nand.superblock["clean"] = False
        self._open = False

    def _require_open(self) -> None:
        if not self._open:
            raise FtlError("device is shut down")

    # ------------------------------------------------------------------
    # Media-fault survival
    # ------------------------------------------------------------------
    def record_media_loss(self, ppn: int, reason: str,
                          header: Optional[OobHeader] = None) -> None:
        """Strike an uncorrectable page from every runtime structure.

        Called when the retry ladder ran out on a page we still needed
        (cleaner copy-forward, scrub patrol, activation).  The page is
        dropped from the forward map, from *every* epoch's validity
        bits, and from the note registry, and a ``lost=True`` entry
        lands in the damage manifest — the device keeps running and
        reports exactly what it lost instead of crashing or silently
        serving zeros.
        """
        array = self.nand.array
        if header is None and array.is_programmed(ppn) \
                and not array.is_torn(ppn):
            header = array.read_header(ppn)
        lba = None
        epoch = None
        if header is not None:
            epoch = header.epoch
            if header.kind is PageKind.DATA:
                lba = header.lba
        if races.enabled and lba is not None:
            races.note(self.kernel, f"ftl.map:{lba}", "r")
        mapped = lba is not None and self.map.get(lba) == ppn
        if mapped:
            if races.enabled:
                races.note(self.kernel, f"ftl.map:{lba}", "w")
            self.map.delete(lba)
        self._clear_valid_everywhere(ppn, lba)
        self._note_registry.pop(ppn, None)
        self._read_cache.invalidate_range(ppn, 1)
        # ``mapped`` records whether the *active tree* lost this LBA:
        # only then must foreground reads raise instead of returning
        # zeros.  A stale copy (live only in some frozen epoch) dying
        # must not poison active reads of an LBA that was legitimately
        # trimmed or overwritten.
        self.damage.record(DamageEntry(
            ppn=ppn, reason=reason, lba=lba, epoch=epoch,
            segment=ppn // self.log.segment_pages,
            at_ns=self.kernel.now, lost=True, mapped=mapped))

    def _clear_valid_everywhere(self, ppn: int,
                                lba: Optional[int] = None) -> None:
        """Drop ``ppn``'s validity in every epoch (hook; base: one bitmap)."""
        del lba
        self._clear_valid(ppn)

    def _note_segment_retired(self, index: int) -> None:
        del index
        self._maybe_degrade()

    def _maybe_degrade(self) -> None:
        """Latch read-only mode once retirements eat the spare reserve.

        The export-capacity bound from ``__init__`` must keep holding
        as grown-bad blocks shrink the pool; the moment the surviving
        segments (minus structural headroom) can no longer back every
        exported LBA, accepting more writes could wedge the device with
        nothing reclaimable — so stop accepting them, loudly.
        """
        if self.degraded:
            return
        usable = self.log.segment_count - self.log.retired_segment_count()
        capacity = (usable - self._headroom) * (self.log.segment_pages - 1)
        if capacity < self.num_lbas:
            self._enter_degraded(
                f"spare-capacity reserve exhausted: {usable} usable "
                f"segments cannot back {self.num_lbas} exported LBAs")

    def _enter_degraded(self, reason: str) -> None:
        self.degraded = True
        self.degraded_reason = reason
        # Writers parked on segment allocation will never be served.
        self.log.fail_waiters(DegradedModeError(reason))

    def _check_writable(self) -> None:
        if self.degraded:
            raise DegradedModeError(
                f"device is read-only (degraded): {self.degraded_reason}")

    # ------------------------------------------------------------------
    # Synchronous façade
    # ------------------------------------------------------------------
    def write(self, lba: int, data: Optional[bytes] = None,
              sync: Optional[bool] = None) -> None:
        self.kernel.run_process(self.write_proc(lba, data, sync),
                                name=f"write@{lba}")

    def read(self, lba: int) -> bytes:
        return self.kernel.run_process(self.read_proc(lba), name=f"read@{lba}")

    def trim(self, lba: int) -> None:
        self.kernel.run_process(self.trim_proc(lba), name=f"trim@{lba}")

    def write_range(self, lba: int, blocks: List[Optional[bytes]],
                    sync: Optional[bool] = None) -> None:
        self.kernel.run_process(self.write_range_proc(lba, blocks, sync),
                                name=f"writev@{lba}")

    def read_range(self, lba: int, count: int) -> List[bytes]:
        return self.kernel.run_process(self.read_range_proc(lba, count),
                                       name=f"readv@{lba}")

    # ------------------------------------------------------------------
    # Process API
    # ------------------------------------------------------------------
    def write_proc(self, lba: int, data: Optional[bytes] = None,
                   sync: Optional[bool] = None) -> Generator:
        """Write one logical block; returns the PPN it landed on."""
        self._require_open()
        self._check_writable()
        self._check_lba(lba)
        if data is not None and len(data) > self.block_size:
            raise LbaError(f"data length {len(data)} exceeds block size")
        yield from self._enter_write_path()
        try:
            header = OobHeader(kind=PageKind.DATA, lba=lba,
                               epoch=self._current_epoch(),
                               seq=self._bump_seq(),
                               length=len(data) if data is not None else 0)
            ppn, done = yield from self.log.append(
                header, data, head=self.log.user_head_for(lba))
            self._on_packet_appended(ppn, header)
            yield from self._install_mapping(lba, ppn)
        finally:
            self._exit_write_path()
        self.metrics.writes += 1
        self.cleaner.maybe_kick()
        wait_durable = self.config.sync_writes if sync is None else sync
        if wait_durable:
            yield done
        return ppn

    def read_proc(self, lba: int) -> Generator:
        """Read one logical block; never-written LBAs read as zeros."""
        self._require_open()
        self._check_lba(lba)
        self.metrics.reads += 1
        yield from self._map_fault(lba)
        if races.enabled:
            races.note(self.kernel, f"ftl.map:{lba}", "r")
        ppn = self.map.get(lba)
        sequential = (self._last_read_lba is not None
                      and lba == self._last_read_lba + 1)
        self._last_read_lba = lba
        if ppn is None:
            if self.damage.lba_lost(lba):
                # The medium destroyed this block's only copy.  Never
                # fabricate zeros for data we once accepted: fail the
                # read with the typed media error (the damage manifest
                # has the details).
                raise UncorrectableError(
                    f"lba {lba} was lost to a media fault "
                    "(see the damage report)")
            yield self.config.cpu.unmapped_read_ns
            return bytes(self.block_size)
        record = self._read_cache.get(ppn)
        if record is None and ppn in self._prefetch_inflight:
            # A prefetch for this page is already on the wire; ride it.
            yield self._prefetch_inflight[ppn]
            record = self._read_cache.get(ppn)
        if record is not None:
            self.metrics.readahead_hits += 1
            yield self.nand.timing.xfer_ns(0)  # host-side copy cost
        else:
            try:
                record = yield from self.nand.read_page(ppn)
            except UncorrectableError:
                # Record the casualty (not yet known-lost: the retry
                # ladder may have been defeated by a transient injected
                # fault) and surface the typed error to the caller.
                self.damage.record(DamageEntry(
                    ppn=ppn, reason="read", lba=lba,
                    segment=ppn // self.log.segment_pages,
                    at_ns=self.kernel.now, lost=False))
                raise
            if sequential and self.config.readahead_pages > 0:
                self.kernel.spawn(self._readahead(lba + 1),
                                  name=f"readahead@{lba + 1}")
        if record.header.lba != lba:
            raise FtlError(
                f"map corruption: ppn {ppn} holds lba {record.header.lba}, "
                f"expected {lba}")
        return self._payload(record)

    def trim_proc(self, lba: int) -> Generator:
        """Discard one logical block (persisted via a trim note)."""
        self._require_open()
        self._check_writable()
        self._check_lba(lba)
        yield from self._enter_write_path()
        try:
            note = TrimNote(lba=lba)
            payload = encode_note(note)
            header = OobHeader(kind=PageKind.NOTE_TRIM, lba=lba,
                               epoch=self._current_epoch(),
                               seq=self._bump_seq(),
                               length=len(payload))
            ppn, done = yield from self.log.append(
                header, payload, head=self.log.user_head_for(lba))
            self._on_packet_appended(ppn, header)
            self._note_registry[ppn] = note
            yield from self._map_fault(lba)
            if races.enabled:
                races.note(self.kernel, f"ftl.map:{lba}", "w")
            old = self.map.delete(lba)
            if old is not None:
                yield from self._uninstall_mapping(old)
        finally:
            self._exit_write_path()
        self.metrics.trims += 1
        self.cleaner.maybe_kick()
        yield done  # notes are durable before returning

    def write_range_proc(self, lba: int, blocks: List[Optional[bytes]],
                         sync: Optional[bool] = None) -> Generator:
        """Vectored write: ``blocks[i]`` lands at ``lba + i``.

        The paper's VSL takes "a range of LBAs and the data to be
        written" (§5.2.2); an 8 KiB database write is two consecutive
        blocks.  Appends serialize on the log head, but with async
        semantics the die programs pipeline behind the bus transfers.
        """
        if not blocks:
            return []
        self._check_writable()
        self._check_lba(lba)
        self._check_lba(lba + len(blocks) - 1)
        wait_durable = self.config.sync_writes if sync is None else sync
        dones = []
        ppns = []
        yield from self._enter_write_path()
        try:
            for offset, data in enumerate(blocks):
                if data is not None and len(data) > self.block_size:
                    raise LbaError(
                        f"data length {len(data)} exceeds block size")
                header = OobHeader(kind=PageKind.DATA, lba=lba + offset,
                                   epoch=self._current_epoch(),
                                   seq=self._bump_seq(),
                                   length=len(data) if data is not None else 0)
                ppn, done = yield from self.log.append(
                    header, data, head=self.log.user_head_for(lba + offset))
                self._on_packet_appended(ppn, header)
                yield from self._install_mapping(lba + offset, ppn)
                self.metrics.writes += 1
                ppns.append(ppn)
                dones.append(done)
        finally:
            self._exit_write_path()
        self.cleaner.maybe_kick()
        if wait_durable:
            for done in dones:
                if not done.triggered:
                    yield done
        return ppns

    def read_range_proc(self, lba: int, count: int) -> Generator:
        """Vectored read: ``count`` consecutive blocks, issued in
        parallel across the device's dies."""
        if count <= 0:
            return []
        self._check_lba(lba)
        self._check_lba(lba + count - 1)
        procs = [
            self.kernel.spawn(self.read_proc(lba + offset),
                              name=f"readv@{lba + offset}")
            for offset in range(count)
        ]
        out = []
        for proc in procs:
            out.append((yield proc))
        return out

    def _readahead(self, lba: int) -> Generator:
        """Prefetch the next few sequentially-mapped blocks."""
        for next_lba in range(lba, min(lba + self.config.readahead_pages,
                                       self.num_lbas)):
            # With a flash-resident map, probe only resident pages: a
            # background prefetch must not charge sync map faults.
            ppn = (self.map.peek(next_lba) if self.map_is_cached
                   else self.map.get(next_lba))
            if ppn is None:
                return
            if (self._read_cache.get(ppn) is not None
                    or ppn in self._prefetch_inflight):
                continue
            done = self.kernel.event()
            self._prefetch_inflight[ppn] = done
            try:
                try:
                    record = yield from self.nand.read_page(ppn)
                except UncorrectableError:
                    # Nobody joins a prefetch, so the error must stop
                    # here: note it and quit prefetching.  A foreground
                    # read of this LBA will hit (and report) the same
                    # fault through the normal path.
                    self.damage.record(DamageEntry(
                        ppn=ppn, reason="readahead", lba=next_lba,
                        segment=ppn // self.log.segment_pages,
                        at_ns=self.kernel.now, lost=False))
                    return
                self._read_cache.put(ppn, record)
            finally:
                del self._prefetch_inflight[ppn]
                done.trigger()

    def _payload(self, record) -> bytes:
        data = record.data
        if data is None:
            return bytes(self.block_size)
        if len(data) < self.block_size:
            return data + bytes(self.block_size - len(data))
        return data

    # ------------------------------------------------------------------
    # Shared helpers
    # ------------------------------------------------------------------
    def _check_lba(self, lba: int) -> None:
        if not 0 <= lba < self.num_lbas:
            raise LbaError(f"lba {lba} out of range [0, {self.num_lbas})")

    def _bump_seq(self) -> int:
        self._next_seq += 1
        return self._next_seq

    # ------------------------------------------------------------------
    # Forward map plumbing (RAM B+ tree vs. flash-resident cache)
    # ------------------------------------------------------------------
    @property
    def map_is_cached(self) -> bool:
        """True when the forward map is flash-resident (bounded RAM)."""
        return self.config.map_cache_pages > 0

    def _make_map(self):
        if self.config.map_cache_pages > 0:
            from repro.ftl.mapcache import MapCache
            return MapCache(self, span=self.config.map_span,
                            budget_pages=self.config.map_cache_pages,
                            dirty_batch=self.config.map_dirty_batch)
        return BPlusTree(order=self.config.map_order)

    def map_info(self) -> Dict[str, Any]:
        """Forward-map observability (info()["map"])."""
        out: Dict[str, Any] = {
            "mode": "cached" if self.map_is_cached else "ram",
            "memory_bytes": self.map.memory_bytes(),
            "nodes": self.map.node_count(),
        }
        if self.map_is_cached:
            out["cache_pages_budget"] = self.config.map_cache_pages
            out["span"] = self.config.map_span
            out.update(self.map.stats())
        return out

    def _map_fault(self, lba: int) -> Generator:
        """Charge the cost of making ``lba``'s translation page resident.

        The I/O paths call this *before* their synchronous map touch so
        a miss pays real flash-read latency (and runs the fault model).
        Purely a performance prepayment: the sync facade re-faults for
        free if the page is evicted again before the touch.  A no-op
        for the all-RAM map.
        """
        if self.map_is_cached:
            yield from self.map.fault_proc(lba // self.config.map_span)

    def _relocate_map_page(self, ppn: int, header: OobHeader,
                           gc_stripe: Optional[int] = None) -> Generator:
        """Cleaner hook: copy-forward one MAP page (GTD update only).

        For the all-RAM map there are no MAP pages on the media; any
        that appear (media written by a cached-mode run, then reopened
        all-RAM) are dead by definition and die with the segment.
        """
        if self.map_is_cached:
            yield from self.map.relocate_proc(ppn, header, gc_stripe)

    def _map_pages_in_segment(self, seg) -> int:
        """Cleaner accounting hook: live MAP pages in ``seg``."""
        if self.map_is_cached:
            return self.map.live_in_segment(seg.index)
        return 0

    def _map_gc_pause(self) -> None:
        """Cleaner hook: a segment clean started (defer map evictions)."""
        if self.map_is_cached:
            self.map.pause_writebacks()

    def _map_gc_resume(self) -> None:
        if self.map_is_cached:
            self.map.resume_writebacks()

    def utilization(self) -> float:
        """Fraction of exported LBAs currently mapped."""
        return len(self.map) / self.num_lbas

    def info(self) -> Dict[str, Any]:
        """Operator-facing summary of device state and health."""
        return {
            "block_size": self.block_size,
            "num_lbas": self.num_lbas,
            "capacity_bytes": self.num_lbas * self.block_size,
            "physical_bytes": self.nand.geometry.capacity_bytes,
            "mapped_lbas": len(self.map),
            "utilization": self.utilization(),
            "segments": {
                "total": self.log.segment_count,
                "free": self.log.free_segment_count(),
                "reserve": self.log.reserve_segment_count(),
                "retired": self.log.retired_segment_count(),
            },
            "cleaner": {
                "segments_cleaned": self.cleaner.segments_cleaned,
                "segments_retired": self.cleaner.segments_retired,
                "pages_moved": self.cleaner.pages_moved,
            },
            "wear": self.nand.array.wear_stats(),
            "map_memory_bytes": self.map.memory_bytes(),
            "map": self.map_info(),
            "parallel": self.parallel_info(),
            "media": {
                "faulty": self.nand.faults is not None,
                "device": self.nand.media.as_dict(),
                "program_fails_recovered": self.log.stats.program_fails,
                "segments_skipped_bad": self.log.stats.segments_skipped_bad,
                "pages_lost_in_gc": self.cleaner.pages_lost,
                "segments_quarantined": self.cleaner.segments_quarantined,
                "scrub": (self.scrubber.counters.as_dict()
                          if self.scrubber is not None else None),
                "bad_blocks": (sorted(self.nand.faults.bad_blocks)
                               if self.nand.faults is not None else []),
                "degraded": self.degraded,
                "degraded_reason": self.degraded_reason,
                "damage": self.damage.summary(),
            },
        }

    def parallel_info(self) -> Dict[str, Any]:
        """Multi-queue data-path observability (info()["parallel"]).

        ``stripe_balance`` is min/max appends across user heads — 1.0
        is perfectly even fan-out, small values mean one head is
        hogging the log (skewed LBA distribution).
        """
        from repro.sim.stats import balance

        stats = self.log.stats
        user_appends = [stats.per_head_appends.get(head, 0)
                        for head in self.log.user_head_names()]
        return {
            "stripes": self.log.num_stripes,
            "user_heads": self.log.user_head_count,
            "per_head_appends": dict(stats.per_head_appends),
            "per_head_bytes": dict(stats.per_head_bytes),
            "per_stripe_opens": dict(stats.per_stripe_opens),
            "stripe_balance": balance(user_appends),
            "queues": self.nand.queues.snapshot(),
        }

    # -- write gate: snapshot ops quiesce the data path --------------------
    def _enter_write_path(self) -> Generator:
        """Block while the gate is closed, then count ourselves in."""
        while self._write_gate is not None:
            yield self._write_gate
        self._inflight_writes += 1
        return
        yield  # pragma: no cover

    def _exit_write_path(self) -> None:
        self._inflight_writes -= 1
        if self._inflight_writes == 0 and self._drain_waiters:
            waiters, self._drain_waiters = self._drain_waiters, []
            for ev in waiters:
                ev.trigger()

    def quiesce_begin(self) -> Generator:
        """Close the write gate and wait for in-flight writes to drain.

        Guarantees no data write straddles what follows (an epoch
        boundary); callers must pair with :meth:`quiesce_end`.
        """
        while self._write_gate is not None:
            # Another snapshot operation is mid-quiesce; take turns.
            yield self._write_gate
        self._write_gate = self.kernel.event()
        while self._inflight_writes > 0:
            ev = self.kernel.event()
            self._drain_waiters.append(ev)
            yield ev

    def quiesce_end(self) -> None:
        gate, self._write_gate = self._write_gate, None
        if gate is not None and not gate.triggered:
            gate.trigger()

    # -- scan barrier: cleaners must not erase under an active scan -------
    def begin_scan(self) -> List[Tuple[int, int, OobHeader]]:
        """Register a log scan; returns its move-log (see cleaner)."""
        move_log: List[Tuple[int, int, OobHeader]] = []
        self._active_scans.append(move_log)
        return move_log

    def end_scan(self, move_log: List[Tuple[int, int, OobHeader]]) -> None:
        self._active_scans.remove(move_log)
        if not self._active_scans:
            waiters, self._scan_done_waiters = self._scan_done_waiters, []
            for ev in waiters:
                ev.trigger()

    def erase_barrier(self) -> Generator:
        """Wait until no log scan is in progress (cleaner, before erase)."""
        while self._active_scans:
            ev = self.kernel.event()
            self._scan_done_waiters.append(ev)
            yield ev

    def record_move(self, old_ppn: int, new_ppn: int,
                    header: OobHeader) -> None:
        for move_log in self._active_scans:
            move_log.append((old_ppn, new_ppn, header))

    # ------------------------------------------------------------------
    # Hooks overridden by the ioSnap layer
    # ------------------------------------------------------------------
    def _make_structures(self) -> None:
        """Create validity tracking (plain single bitmap here)."""
        self.validity = ValidityBitmap(
            self.nand.geometry.total_pages,
            page_bytes=self.config.bitmap_page_bytes)

    def _current_epoch(self) -> int:
        return 0

    def _set_valid(self, ppn: int) -> None:
        if self.validity.set(ppn):
            self._seg_valid[ppn // self.log.segment_pages] += 1

    def _clear_valid(self, ppn: int) -> None:
        if self.validity.clear(ppn):
            self._seg_valid[ppn // self.log.segment_pages] -= 1

    def _recount_seg_valid(self) -> None:
        """Rebuild the per-segment counts after a bulk bitmap reload."""
        self._seg_valid = [
            self.validity.count_range(seg.first_ppn, seg.npages)
            for seg in self.log.segments
        ]

    def _install_mapping(self, lba: int, ppn: int) -> Generator:
        """Point ``lba`` at ``ppn``, invalidating any older location."""
        yield from self._map_fault(lba)
        if races.enabled:
            races.note(self.kernel, f"ftl.map:{lba}", "w")
        old = self.map.insert(lba, ppn)
        self._set_valid(ppn)
        if old is not None:
            self._clear_valid(old)
        return
        yield  # pragma: no cover - generator for subclass cost charging

    def _uninstall_mapping(self, old_ppn: int) -> Generator:
        self._clear_valid(old_ppn)
        return
        yield  # pragma: no cover

    def _compute_valid(self, seg: Segment) -> Tuple[List[int], int]:
        """Valid data PPNs in ``seg`` plus the CPU cost of finding them."""
        valid = list(self.validity.iter_set_in_range(seg.first_ppn, seg.npages))
        pages_touched = (seg.npages + self.validity.bits_per_page - 1) \
            // self.validity.bits_per_page
        return valid, pages_touched * self.config.cpu.bitmap_merge_page_ns

    def _estimate_valid_count(self, seg: Segment) -> int:
        """Move-count estimate used to pace the cleaner.

        O(1): read from the incrementally-maintained per-segment
        counts rather than re-counting the bitmap range.
        """
        return self._seg_valid[seg.index]

    def _block_still_valid(self, ppn: int) -> bool:
        """Re-check at move time (foreground may invalidate mid-clean)."""
        return self.validity.test(ppn)

    def _relocate(self, old_ppn: int, new_ppn: int,
                  header: OobHeader) -> Generator:
        """Fix maps/bitmaps after the cleaner copied old -> new."""
        yield from self._map_fault(header.lba)
        if races.enabled:
            races.note(self.kernel, f"ftl.map:{header.lba}", "r")
        if self.map.get(header.lba) == old_ppn:
            if races.enabled:
                races.note(self.kernel, f"ftl.map:{header.lba}", "w")
            self.map.insert(header.lba, new_ppn)
            self._clear_valid(old_ppn)
            self._set_valid(new_ppn)
        else:
            # Overwritten while the copy was in flight: the new copy is
            # stillborn; make sure neither location reads as valid.
            self._clear_valid(old_ppn)
            self._clear_valid(new_ppn)
        self.record_move(old_ppn, new_ppn, header)
        return
        yield  # pragma: no cover

    def _note_is_live(self, ppn: int, header: OobHeader) -> bool:
        """Should the cleaner preserve this note page?

        Trim notes are conservatively kept forever (stale data packets
        for the trimmed LBA may survive in never-cleaned segments and a
        replay without the note would resurrect them).
        """
        del ppn
        return header.kind is PageKind.NOTE_TRIM

    def _relocate_note(self, old_ppn: int, new_ppn: int) -> None:
        note = self._note_registry.pop(old_ppn, None)
        if note is not None:
            self._note_registry[new_ppn] = note

    def _on_packet_appended(self, ppn: int, header: OobHeader) -> None:
        """Hook: a packet landed at ``ppn`` (ioSnap tracks epoch sets)."""
        del ppn, header

    def _gc_head_for(self, old_ppn: int, header: OobHeader) -> str:
        """Which GC append head a copy-forward should use (hook)."""
        del old_ppn, header
        return "gc"

    def _before_segment_erase(self, seg: Segment) -> None:
        """Hook: the cleaner is about to erase ``seg`` (media intact).

        Runs after the erase barrier, so no scan holds references into
        the segment; the ioSnap layer uses it for sanitizer audits that
        need the OOB headers before they are wiped.
        """
        del seg

    def _on_segment_erased(self, seg: Segment) -> None:
        self._read_cache.invalidate_range(seg.first_ppn, seg.npages)
        for ppn in list(self._note_registry):
            if seg.contains(ppn):
                del self._note_registry[ppn]

    def _replay_note(self, header: OobHeader, note: Any) -> None:
        """Recovery hook: process one non-trim note (base FTL: none)."""
        del header, note

    def _rebuild_state(self, packets: List[Any]) -> Generator:
        """Recovery hook: rebuild map/validity from scanned packets."""
        from repro.ftl.recovery import fold_winners

        for packet in sorted(
                (p for p in packets if p.note is not None
                 and p.header.kind is not PageKind.NOTE_TRIM),
                key=lambda p: p.header.seq):
            self._replay_note(packet.header, packet.note)
        winners = fold_winners(packets)
        items = sorted((lba, ppn) for lba, (_seq, ppn) in winners.items())
        if self.map_is_cached:
            # Data-packet replay is the map's source of truth after a
            # crash: any MAP pages on the media predate the cut and are
            # orphaned here (the cleaner reclaims them).
            yield from self.map.rebuild_proc(items)
        else:
            self.map = BPlusTree.bulk_load(items, order=self.config.map_order)
        yield len(items) * self.config.cpu.map_bulk_insert_ns
        self._rebuild_validity(winners)

    def _dump_extra(self, generation: int) -> Dict[str, Any]:
        """Checkpoint hook: extra state (ioSnap adds epochs/snapshots).

        ``generation`` is the checkpoint generation being written, so
        layers can stamp validatable sub-images (ioSnap's durable
        epoch-summary index); the base FTL has no use for it.
        """
        del generation
        return {"validity_pages": self.validity.materialized_pages()}

    def _load_extra(self, extra: Dict[str, Any],
                    generation: Optional[int]) -> None:
        del generation
        self.validity.load_pages(extra["validity_pages"])
        self._recount_seg_valid()

    def _rebuild_validity(self, winners: Dict[int, Tuple[int, int]]) -> None:
        """Recovery hook: rebuild validity from {lba: (seq, ppn)} winners."""
        self.validity = ValidityBitmap(
            self.nand.geometry.total_pages,
            page_bytes=self.config.bitmap_page_bytes)
        for _lba, (_seq, ppn) in winners.items():
            self.validity.set(ppn)
        self._recount_seg_valid()

    def live_note_count(self) -> int:
        return len(self._note_registry)

    @staticmethod
    def decode_registry_note(header: OobHeader, raw: bytes):
        return decode_note(header.kind, raw)

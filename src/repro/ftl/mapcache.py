"""Demand-paged flash-resident forward map (DFTL-style cached mapping).

The all-RAM ``BPlusTree`` forward map grows O(device): fine for the
paper's simulation sizes, a wall at the 1.2 TB card.  Following the
cached-mapping-table design of *Garbage Collection Techniques for
Flash-Resident Page-Mapping FTLs* (Dayan; see PAPERS.md), this module
makes flash the home of the map:

* the LBA space is split into fixed-``span`` **translation pages**
  (``tidx = lba // span``), each serialized as one ``PageKind.MAP``
  packet appended to a dedicated ``"map"`` log head;
* the **global translation directory** (GTD) maps ``tidx`` to the PPN
  of the page's current flash copy — the only O(#translation-pages)
  RAM structure;
* :class:`MapCache` keeps a bounded LRU of at most ``budget_pages``
  translation pages in RAM, with a dirty set written back in batches
  on eviction and flushed wholesale at checkpoint.

Two access planes, one correctness rule:

**The synchronous facade is always self-sufficient.**  ``get`` /
``insert`` / ``delete`` / ``items`` never yield; a non-resident page is
faulted in synchronously via ``array.read`` (no simulated time, no
fault model — the array bypasses both).  Nothing anywhere may depend
on a page *staying* resident across a yield.

**The generator plane charges the time.**  ``fault_proc`` is what the
I/O paths call *before* their sync map touch: it pays the flash read
latency of a miss (so the cache is a performance object, not just a
memory one), runs the page through the real fault model, and drains
the eviction backlog.  If a concurrent process evicts the page again
before the sync touch, the touch silently re-faults — correct, merely
unpaid-for, and counted in ``sync_faults``.

Every post-yield mutation goes through a synchronous commit helper
that re-validates its precondition in the same scheduler resumption
(``_install_faulted``, ``_commit_gtd``), which is exactly the
cooperative-atomicity discipline IOL009 and the ``map.cache`` registry
entry in :mod:`repro.races.shared` demand.

Crash story: map flushes are made durable (the program's done event is
awaited) *before* the GTD adopts the new PPN, and recovery never reads
MAP packets at all — it replays data packets into a fresh map
(:meth:`rebuild_proc`), so a cut anywhere in ``map.page_flush`` /
``map.gtd_commit`` can at worst orphan a MAP page copy, never corrupt
a mapping.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Dict, Generator, Iterator, List, Optional, Tuple

from repro.errors import CheckpointError, UncorrectableError
from repro.ftl.packet import decode_payload, encode_payload
from repro.nand.oob import OobHeader, PageKind
from repro.races import runtime as races
from repro.sim.stats import Counters
from repro.torture import sites

#: RAM model, kept commensurable with ``btree.BPlusTree.memory_bytes``:
#: object overhead per resident translation page / directory, and bytes
#: per mapping slot or PPN reference.
_PAGE_FIXED_BYTES = 96
_BYTES_PER_ENTRY = 8
_BYTES_PER_REF = 8


class TranslationPage:
    """One resident translation page: ``span`` mapping slots.

    ``version`` increments on every mutation; writeback snapshots it
    before yielding and only clears ``dirty`` if it is unchanged after
    the append — a page re-dirtied mid-flush stays dirty (RAM remains
    authoritative until a writeback lands a current image).
    """

    __slots__ = ("tidx", "entries", "dirty", "version")

    def __init__(self, tidx: int, entries: List[Optional[int]],
                 dirty: bool = False) -> None:
        self.tidx = tidx
        self.entries = entries
        self.dirty = dirty
        self.version = 0


class MapCache:
    """Bounded-RAM LRU cache over the flash-resident forward map."""

    def __init__(self, ftl, span: int, budget_pages: int,
                 dirty_batch: int) -> None:
        self._ftl = ftl
        self.span = span
        self.budget_pages = budget_pages
        self.dirty_batch = max(1, dirty_batch)
        npages = -(-ftl.num_lbas // span)  # ceil
        self._gtd: List[Optional[int]] = [None] * npages
        self._pages: "OrderedDict[int, TranslationPage]" = OrderedDict()
        self._dirty: set = set()
        self._size = 0                      # mapped LBAs (len() contract)
        self._seg_live: Dict[int, int] = {}  # segment -> GTD-referenced pages
        self.counters = Counters("hits", "misses", "evictions",
                                 "writebacks", "sync_faults",
                                 "relocations", "lost_pages")
        # While > 0 (a segment clean is in flight) eviction writebacks
        # are deferred: copy-forward fixups dirty resident pages in RAM
        # instead of appending, because an append here competes for the
        # very space the clean is trying to free (the DFTL batching
        # argument).  The transient over-budget residency drains at the
        # next fault once the cleans finish.
        self._defer_writebacks = 0

    # -- small accessors ---------------------------------------------------
    def __len__(self) -> int:
        return self._size

    def __contains__(self, lba: int) -> bool:
        return self.get(lba) is not None

    @property
    def translation_pages(self) -> int:
        """Total translation pages the LBA space divides into."""
        return len(self._gtd)

    def node_count(self) -> int:
        """Resident translation pages (the B+ tree's node analogue)."""
        return len(self._pages)

    def memory_bytes(self) -> int:
        """Total map-subsystem RAM: cache pages + GTD + dirty queue."""
        page_bytes = _PAGE_FIXED_BYTES + self.span * _BYTES_PER_ENTRY
        cache = len(self._pages) * page_bytes
        gtd = _PAGE_FIXED_BYTES + len(self._gtd) * _BYTES_PER_REF
        dirty = _PAGE_FIXED_BYTES + len(self._dirty) * _BYTES_PER_REF
        return cache + gtd + dirty

    def stats(self) -> Dict:
        """Counter snapshot plus derived hit rate, for ``info()``."""
        from repro.sim.stats import rate
        counts = self.counters.as_dict()
        counts["hit_rate"] = rate(counts["hits"],
                                  counts["hits"] + counts["misses"])
        counts["resident_pages"] = len(self._pages)
        counts["dirty_pages"] = len(self._dirty)
        counts["translation_pages"] = len(self._gtd)
        return counts

    # -- synchronous facade (never yields; always self-sufficient) ---------
    def get(self, lba: int) -> Optional[int]:
        if races.enabled:
            races.note(self._ftl.kernel, "map.cache", "r")
        page = self._resident(lba // self.span, fault=True)
        return page.entries[lba % self.span]

    def peek(self, lba: int) -> Optional[int]:
        """Resident-only lookup: never faults (readahead's probe)."""
        page = self._pages.get(lba // self.span)
        if page is None:
            return None
        return page.entries[lba % self.span]

    def insert(self, lba: int, ppn: int) -> Optional[int]:
        if races.enabled:
            races.note(self._ftl.kernel, "map.cache", "w")
        page = self._resident(lba // self.span, fault=True)
        old = page.entries[lba % self.span]
        page.entries[lba % self.span] = ppn
        if old is None:
            self._size += 1
        self._mark_dirty(page)
        return old

    def delete(self, lba: int) -> Optional[int]:
        if races.enabled:
            races.note(self._ftl.kernel, "map.cache", "w")
        page = self._resident(lba // self.span, fault=True)
        old = page.entries[lba % self.span]
        if old is None:
            return None
        page.entries[lba % self.span] = None
        self._size -= 1
        self._mark_dirty(page)
        return old

    def items(self) -> Iterator[Tuple[int, int]]:
        """All ``(lba, ppn)`` mappings in LBA order.

        Read-only: non-resident pages are decoded straight off the
        array without touching the LRU or installing anything, so fsck
        and checkpointing can walk the full map without perturbing (or
        overflowing) the cache.
        """
        for tidx in range(len(self._gtd)):
            page = self._pages.get(tidx)
            if page is not None:
                entries = page.entries
            elif self._gtd[tidx] is not None:
                entries = self._read_flash_entries(self._gtd[tidx])
            else:
                continue
            base = tidx * self.span
            for offset, ppn in enumerate(entries):
                if ppn is not None:
                    yield base + offset, ppn

    # -- the time-charging plane -------------------------------------------
    def fault_proc(self, tidx: int) -> Generator:
        """Pay for residency of translation page ``tidx``.

        Charges a real (fault-model-visible) flash read on a miss and
        drains the eviction backlog.  Purely a performance prepayment:
        the following sync facade op re-faults for free if the page is
        evicted again in between.
        """
        if races.enabled:
            races.note(self._ftl.kernel, "map.cache", "r")
        page = self._pages.get(tidx)
        if page is not None:
            self._pages.move_to_end(tidx)
            self.counters.bump("hits")
            return
        self.counters.bump("misses")
        src_ppn = self._gtd[tidx]
        if src_ppn is None:
            entries: List[Optional[int]] = [None] * self.span
        else:
            record = yield from self._ftl.nand.read_page(src_ppn)
            entries = self._decode_entries(record.data, tidx)
        self._install_faulted(tidx, src_ppn, entries)
        yield from self._evict_proc()

    def _evict_proc(self) -> Generator:
        """Shrink the cache back to budget, writing back dirty victims.

        Clean victims drop synchronously; a dirty victim triggers a
        writeback batch (up to ``dirty_batch`` LRU-ordered dirty pages
        in one go) and the loop re-evaluates — residency and dirtiness
        are re-read fresh after every yield.
        """
        while len(self._pages) > self.budget_pages:
            victim = next(iter(self._pages.values()))
            if not victim.dirty:
                if races.enabled:
                    races.note(self._ftl.kernel, "map.cache", "w")
                del self._pages[victim.tidx]
                self.counters.bump("evictions")
                continue
            if self._defer_writebacks \
                    or self._ftl.log.free_segment_count() == 0:
                # Space pressure: tolerate over-budget residency rather
                # than append map pages the cleaner would have to chase.
                return
            batch = [page for page in list(self._pages.values())
                     if page.dirty][:self.dirty_batch]
            for page in batch:
                yield from self._writeback_page_proc(page)

    def _writeback_page_proc(self, page: TranslationPage) -> Generator:
        """Append ``page``'s current image to the map head, durably.

        The GTD adopts the new PPN only after the program's done event
        fires, and ``dirty`` clears only if no mutation raced the
        append (version check) — so a non-resident page is always
        clean and its GTD entry always names a durable, current image.
        """
        if not page.dirty:
            return
        entries = list(page.entries)
        version = page.version
        ppn = yield from self._flush_entries_proc(page.tidx, entries,
                                                 sites.MAP_PAGE_FLUSH)
        self.counters.bump("writebacks")
        self._commit_gtd(page.tidx, ppn)
        if page.version == version:
            page.dirty = False
            self._dirty.discard(page.tidx)

    def pause_writebacks(self) -> None:
        """A segment clean started: defer eviction writebacks."""
        self._defer_writebacks += 1

    def resume_writebacks(self) -> None:
        self._defer_writebacks -= 1

    def flush_all_proc(self) -> Generator:
        """Write back every dirty page (checkpoint's durability pass)."""
        while self._dirty:
            tidx = min(self._dirty)
            page = self._pages[tidx]  # invariant: dirty => resident
            yield from self._writeback_page_proc(page)

    def _flush_entries_proc(self, tidx: int, entries: List[Optional[int]],
                            site: str) -> Generator:
        payload = encode_payload({"span": self.span, "tpage": tidx,
                                  "entries": entries})
        header = OobHeader(kind=PageKind.MAP, lba=tidx, epoch=0,
                           seq=self._ftl._bump_seq(), length=len(payload))
        ppn, done = yield from self._ftl.log.append(
            header, payload, privileged=True, head="map", site=site)
        yield done
        return ppn

    # -- translation-aware cleaning ----------------------------------------
    def live_in_segment(self, seg_index: int) -> int:
        """GTD-referenced MAP pages in ``seg_index`` (cleaner accounting)."""
        return self._seg_live.get(seg_index, 0)

    def relocate_proc(self, ppn: int, header: OobHeader,
                      gc_stripe: Optional[int] = None) -> Generator:
        """Copy-forward one MAP page out of a segment being cleaned.

        Updates the GTD, never the data map.  A copy the GTD no longer
        references is stale — it dies with the segment.  A resident
        dirty page is simply flushed (freshens *and* relocates); the
        re-append of a clean page re-checks the GTD after its yields
        and backs off if a racing writeback already superseded it.
        """
        del gc_stripe  # map head affinity; stripe 0 serves all today
        tidx = header.lba
        if tidx >= len(self._gtd) or self._gtd[tidx] != ppn:
            return
        page = self._pages.get(tidx)
        if page is not None and page.dirty:
            yield from self._writeback_page_proc(page)
            return
        if page is not None:
            entries = list(page.entries)
        else:
            try:
                record = yield from self._ftl.nand.read_page(ppn)
            except UncorrectableError:
                # The only flash copy is unreadable: land the casualty
                # in the damage manifest, then strike the GTD entry
                # (those LBAs now read unmapped) rather than leave it
                # dangling over the imminent erase.
                self._ftl.record_media_loss(ppn, reason="gc-map",
                                            header=header)
                self.counters.bump("lost_pages")
                self._commit_gtd(tidx, None, expect=ppn)
                return
            entries = self._decode_entries(record.data, tidx)
        new_ppn = yield from self._flush_entries_proc(tidx, entries,
                                                      sites.MAP_PAGE_FLUSH)
        self.counters.bump("relocations")
        self._commit_gtd(tidx, new_ppn, expect=ppn)

    # -- checkpoint / recovery ----------------------------------------------
    def dump_gtd(self) -> Dict:
        """Serializable directory image for the checkpoint superblock."""
        return {"span": self.span, "size": self._size,
                "gtd": list(self._gtd)}

    def adopt_gtd(self, image: Dict) -> None:
        """Restore from a checkpoint's directory image (RAM-only)."""
        if image.get("span") != self.span:
            raise CheckpointError(
                f"map span mismatch: checkpoint has {image.get('span')}, "
                f"device configured for {self.span}")
        gtd = image.get("gtd")
        if not isinstance(gtd, list) or len(gtd) != len(self._gtd):
            raise CheckpointError("GTD image does not match device geometry")
        self._gtd = list(gtd)
        self._size = int(image["size"])
        self._pages.clear()
        self._dirty.clear()
        self._recount_seg_live()

    def reset(self) -> None:
        """Forget everything (recovery rebuilds from data packets)."""
        self._gtd = [None] * len(self._gtd)
        self._pages.clear()
        self._dirty.clear()
        self._size = 0
        self._seg_live.clear()

    def rebuild_proc(self, items) -> Generator:
        """Rebuild the whole map from ``(lba, ppn)`` pairs, bounded-RAM.

        Recovery's replacement for ``BPlusTree.bulk_load``: inserts
        through the normal facade, draining evictions as it goes so
        peak RAM stays O(budget) even for a full-device replay.  Dirty
        tail pages stay resident; the post-recovery checkpoint (or the
        next eviction) writes them home.
        """
        self.reset()
        for lba, ppn in items:
            self.insert(lba, ppn)
            if len(self._pages) > self.budget_pages:
                yield from self._evict_proc()
        yield len(self._gtd) * self._ftl.config.cpu.replay_packet_ns

    # -- internals -----------------------------------------------------------
    def _resident(self, tidx: int, fault: bool) -> TranslationPage:
        """The resident page for ``tidx``, sync-faulting if needed."""
        page = self._pages.get(tidx)
        if page is not None:
            self._pages.move_to_end(tidx)
            return page
        if not fault:
            raise KeyError(tidx)
        self.counters.bump("sync_faults")
        src_ppn = self._gtd[tidx]
        if src_ppn is None:
            entries: List[Optional[int]] = [None] * self.span
        else:
            entries = self._read_flash_entries(src_ppn)
        page = TranslationPage(tidx, entries)
        self._pages[tidx] = page
        self._evict_clean_sync(keep=tidx)
        return page

    def _evict_clean_sync(self, keep: Optional[int] = None) -> None:
        """Drop clean LRU pages over budget; dirty overshoot waits for
        the next ``fault_proc``/``_evict_proc`` drain.

        ``keep`` pins the page the caller is about to mutate: evicting
        it here would orphan the object the facade still holds.
        """
        if len(self._pages) <= self.budget_pages:
            return
        for tidx in [t for t, p in self._pages.items()
                     if not p.dirty and t != keep]:
            if len(self._pages) <= self.budget_pages:
                break
            del self._pages[tidx]
            self.counters.bump("evictions")

    def _mark_dirty(self, page: TranslationPage) -> None:
        page.version += 1
        if not page.dirty:
            page.dirty = True
            self._dirty.add(page.tidx)

    def _install_faulted(self, tidx: int, src_ppn: Optional[int],
                         entries: List[Optional[int]]) -> None:
        """Post-yield install, re-validated in one resumption.

        Discards the faulted image if a concurrent process already
        installed the page (theirs may be newer) or if the GTD moved
        off the PPN we read from (ours is definitely stale).
        """
        if races.enabled:
            races.note(self._ftl.kernel, "map.cache", "r")
            races.note(self._ftl.kernel, "map.cache", "w")
        if tidx in self._pages:
            return
        if self._gtd[tidx] != src_ppn:
            return
        self._pages[tidx] = TranslationPage(tidx, entries)

    def _commit_gtd(self, tidx: int, new_ppn: Optional[int],
                    expect: Optional[int] = None) -> None:
        """Point the GTD at ``new_ppn``, atomically in one resumption.

        With ``expect`` set (relocation), backs off if the entry no
        longer names the copy being relocated — a racing writeback
        already superseded it and the relocated copy is garbage.
        Maintains the per-segment live-page accounting either way.
        """
        if races.enabled:
            races.note(self._ftl.kernel, "map.cache", "r")
            races.note(self._ftl.kernel, "map.cache", "w")
        old = self._gtd[tidx]
        if expect is not None and old != expect:
            return
        self._ftl.nand.power_check(
            sites.phased(sites.MAP_GTD_COMMIT, sites.PHASE_PRE))
        self._gtd[tidx] = new_ppn
        seg_pages = self._ftl.log.segment_pages
        if old is not None:
            seg = old // seg_pages
            remaining = self._seg_live.get(seg, 0) - 1
            if remaining > 0:
                self._seg_live[seg] = remaining
            else:
                self._seg_live.pop(seg, None)
        if new_ppn is not None:
            seg = new_ppn // seg_pages
            self._seg_live[seg] = self._seg_live.get(seg, 0) + 1

    def _recount_seg_live(self) -> None:
        self._seg_live.clear()
        seg_pages = self._ftl.log.segment_pages
        for ppn in self._gtd:
            if ppn is not None:
                seg = ppn // seg_pages
                self._seg_live[seg] = self._seg_live.get(seg, 0) + 1

    def _read_flash_entries(self, ppn: int) -> List[Optional[int]]:
        """Decode a MAP page straight off the array (sync, no time)."""
        record = self._ftl.nand.array.read(ppn)
        return self._decode_entries(record.data, None)

    def _decode_entries(self, data: Optional[bytes],
                        tidx: Optional[int]) -> List[Optional[int]]:
        if data is None:
            raise CheckpointError("MAP page has no payload on the media")
        payload = decode_payload(data)
        if payload.get("span") != self.span:
            raise CheckpointError(
                f"MAP page span {payload.get('span')} != device "
                f"span {self.span}")
        if tidx is not None and payload.get("tpage") != tidx:
            raise CheckpointError(
                f"MAP page names tpage {payload.get('tpage')}, "
                f"expected {tidx}")
        entries = payload["entries"]
        if len(entries) != self.span:
            raise CheckpointError("MAP page entry count != span")
        return list(entries)

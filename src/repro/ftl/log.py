"""The log: physical space carved into segments with parallel append heads.

A *segment* is the cleaning/erase unit (paper §5.2.3): one or more
whole erase blocks, never spanning a die.  Segments move through
FREE -> OPEN -> CLOSED and back to FREE when the cleaner reclaims them.
Each segment's first page is a SEGMENT_HEADER recording the segment's
allocation sequence number, which is how log-order is recovered after a
crash.

Parallelism (the LFTL-style multi-queue data path, see
``docs/parallel.md``): the physical segments are partitioned into
*stripes*, one per channel, by the die they live on (``die % channels``
— the die's channel).  Foreground writes fan out over N *user heads*
(default one per channel, ``FtlConfig.parallel_heads`` to override),
selected by ``lba % N`` so per-LBA ordering is preserved; the cleaner
and scrubber run one worker per stripe appending to stripe-qualified GC
heads ("gc", "gc.1", ...).  Each head owns at most one open segment and
appends serialize *per head* on a per-head lock; programs are handed to
the per-die submission queues (:mod:`repro.nand.queue`), so heads on
different dies overlap while everything within one segment still lands
in submission order.

Sequence numbers stay globally allocated (``VslDevice._bump_seq``), so
the total order recovery and fsck fold by is untouched; each *user*
head's sequence numbers are additionally strictly monotonic, which the
runtime sanitizer checks per head.

A small *reserve* of free segments is only allocatable by privileged
appenders (the cleaner, and management operations that release space),
so cleaning can always make forward progress even when foreground
writers have exhausted free space.  Free lists and reserves are kept
per stripe for die affinity, but space is fungible: a head whose stripe
runs dry borrows from another stripe rather than stalling while free
segments exist elsewhere.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, Generator, List, Optional, Tuple

from repro import sanitize
from repro.errors import FtlError, OutOfSpaceError, ProgramFailError
from repro.nand.device import NandDevice
from repro.nand.oob import OobHeader, PageKind
from repro.races import runtime as races
from repro.sim import Event, Kernel, Lock
from repro.torture import sites


# Crash-site names for power-cut injection (see repro.torture.sites,
# the central registry): the site of a page program is derived from
# what is being appended and on which head, so a cut can target e.g.
# "mid cleaner copy-forward" (gc.copy:mid) independently of "mid
# foreground write" (write.data:mid).
_NOTE_SITES = {
    PageKind.NOTE_TRIM: sites.NOTE_TRIM,
    PageKind.NOTE_SNAP_CREATE: sites.NOTE_SNAP_CREATE,
    PageKind.NOTE_SNAP_DELETE: sites.NOTE_SNAP_DELETE,
    PageKind.NOTE_SNAP_ACTIVATE: sites.NOTE_SNAP_ACTIVATE,
    PageKind.NOTE_SNAP_DEACTIVATE: sites.NOTE_SNAP_DEACTIVATE,
}

# Precomputed phased name: this check sits on every packet append.
_HEAD_COMMIT_PRE = sites.LOG_HEAD_COMMIT + ":pre"


def append_site(kind: PageKind, head: str) -> str:
    """Crash-site name for appending a ``kind`` packet at ``head``.

    Note kinds map to their ``note.*`` name regardless of head:
    delete/deactivate notes are privileged (head "gc") yet are original
    foreground appends.  The cleaner distinguishes its re-appends by
    passing an explicit ``site`` to :meth:`Log.append`.
    """
    if kind is PageKind.DATA:
        return sites.WRITE_DATA if head.startswith("user") else sites.GC_COPY
    if kind is PageKind.CHECKPOINT:
        return sites.CHECKPOINT_PAGE
    if kind is PageKind.MAP:
        return sites.MAP_PAGE_FLUSH
    return _NOTE_SITES.get(kind, sites.LOG_OTHER)


def stripe_head(base: str, stripe: int) -> str:
    """Stripe-qualified head name: ``base`` for stripe 0, ``base.N`` else."""
    return base if stripe == 0 else f"{base}.{stripe}"


class SegmentState(enum.Enum):
    FREE = "free"
    OPEN = "open"
    CLOSED = "closed"
    RETIRED = "retired"   # a block wore out; never allocated again


@dataclass
class Segment:
    """Bookkeeping for one segment of the log."""

    index: int
    first_ppn: int
    npages: int
    state: SegmentState = SegmentState.FREE
    seq: int = -1            # allocation sequence number (log order)
    next_offset: int = 0     # next page to program, relative to first_ppn

    @property
    def data_capacity(self) -> int:
        """Pages available for packets (excludes the segment header)."""
        return self.npages - 1

    @property
    def end_ppn(self) -> int:
        return self.first_ppn + self.npages

    def contains(self, ppn: int) -> bool:
        return self.first_ppn <= ppn < self.end_ppn

    def written_ppns(self, start_offset: int = 1) -> range:
        """Packet pages programmed so far (excludes the header page).

        The range is a stable snapshot of the written extent at call
        time: concurrent appends grow ``next_offset`` but never change
        pages already inside the range, so scan loops may iterate it
        directly without materializing a copy.  ``start_offset`` lets
        delta rescans resume from a previously recorded extent.
        """
        return range(self.first_ppn + max(1, start_offset),
                     self.first_ppn + self.next_offset)


@dataclass
class LogStats:
    appends: int = 0
    segments_opened: int = 0
    stall_ns: int = 0        # virtual time writers spent waiting for space
    stalls: int = 0
    program_fails: int = 0   # failed programs absorbed by re-allocation
    segments_skipped_bad: int = 0  # retired at open: grown-bad block
    # Per-head and per-stripe balance observability (satellite of the
    # multi-queue refactor; surfaced via VslDevice.info()["parallel"]).
    per_head_appends: Dict[str, int] = field(default_factory=dict)
    per_head_bytes: Dict[str, int] = field(default_factory=dict)
    per_stripe_opens: Dict[int, int] = field(default_factory=dict)


# A program-fail burns one page slot and the append retries on the next
# PPN (possibly in a fresh segment).  A medium bad enough to fail this
# many programs of a single payload is beyond healing — re-raise.
MAX_PROGRAM_RETRIES = 8


class Log:
    """Striped segment allocator plus the parallel append heads."""

    def __init__(self, kernel: Kernel, device: NandDevice,
                 blocks_per_segment: int = 1,
                 reserve_segments: int = 2,
                 user_heads: Optional[int] = None) -> None:
        geometry = device.geometry
        if geometry.total_blocks % blocks_per_segment:
            raise FtlError(
                f"{geometry.total_blocks} blocks not divisible by "
                f"blocks_per_segment={blocks_per_segment}")
        if geometry.blocks_per_die % blocks_per_segment:
            raise FtlError(
                f"blocks_per_die={geometry.blocks_per_die} not divisible "
                f"by blocks_per_segment={blocks_per_segment}: a segment "
                f"must not span dies")
        self.kernel = kernel
        self.device = device
        self.blocks_per_segment = blocks_per_segment
        self.segment_pages = blocks_per_segment * geometry.pages_per_block
        self.segment_count = geometry.total_blocks // blocks_per_segment
        if reserve_segments >= self.segment_count - 1:
            raise FtlError("reserve would leave no writable segments")
        self.segments: List[Segment] = [
            Segment(index=i, first_ppn=i * self.segment_pages,
                    npages=self.segment_pages)
            for i in range(self.segment_count)
        ]
        # One stripe per channel; a segment's stripe is its die's
        # channel, so heads appending to different stripes never share
        # a die (or, with dies == channels, a channel).
        self.num_stripes = geometry.channels
        self._pages_per_die = geometry.pages_per_die
        if user_heads is None:
            user_heads = self.num_stripes
        if user_heads < 1:
            raise FtlError("need at least one user head")
        self.user_head_count = user_heads
        self._free: List[List[int]] = [[] for _ in range(self.num_stripes)]
        for seg in self.segments:
            self._free[self.stripe_of_segment(seg.index)].append(seg.index)
        # At least one guaranteed privileged draw per stripe: the
        # per-stripe cleaners run concurrently, and each may need to
        # open a fresh gc segment while every free pool is dry.  A
        # reserve smaller than the stripe count would let one stripe's
        # cleaner exhaust it and wedge its sibling mid-clean.
        self._reserve_target = max(reserve_segments, self.num_stripes)
        if self._reserve_target >= self.segment_count - 1:
            raise FtlError("reserve would leave no writable segments")
        self._reserve: List[List[int]] = [[] for _ in
                                          range(self.num_stripes)]
        # Draw the reserve from the tail of the free lists (highest
        # indices), round-robin across stripes so each stripe's cleaner
        # keeps local forward-progress headroom.
        stripe = 0
        for _ in range(self._reserve_target):
            for probe in range(self.num_stripes):
                candidate = (stripe + probe) % self.num_stripes
                if self._free[candidate]:
                    self._reserve[candidate].append(self._free[candidate].pop())
                    stripe = (candidate + 1) % self.num_stripes
                    break
        # Named append heads, created on first use: foreground writes
        # use "user", "user.1", ... (selected by lba % heads); cleaner
        # copy-forwards use the stripe-qualified "gc" heads (or
        # "gc-hot"/"gc-cold" when epoch segregation is on, §5.4.2).
        # Sharing one head would let foreground writes leak into
        # reserve segments the cleaner opened, starving it.
        self._open: Dict[str, Optional[Segment]] = {}
        self._next_seg_seq = 0
        self._head_locks: Dict[str, Lock] = {}
        # One allocator-wide lock for the striped free/reserve pools,
        # not per-stripe locks: heads *borrow* from neighbouring
        # stripes when their home stripe runs dry, so per-stripe locks
        # would have to nest during a borrow and invite order cycles.
        # Every critical section under it is yield-free, so the lock
        # never blocks — try_acquire() must always succeed, and the
        # span exists to *declare* the protocol: the lock-order and
        # yield-discipline lint rules (IOL008/IOL009) and the runtime
        # lockset detector all key off it.
        self._alloc_lock = Lock(kernel, name="log.free")
        self._space_waiters: List[Event] = []
        self.stats = LogStats()
        # Sanitizer state: last (epoch, seq) appended on each user head.
        # Foreground appends stamp the active epoch and a fresh
        # sequence number, so seq must be monotonic per user head
        # (cleaner heads copy old packets and are exempt).
        self._san_last: Dict[str, Tuple[int, int]] = {}
        # Called when a writer is about to stall on free space; the FTL
        # wires this to kick the cleaner so a stalled writer can't
        # deadlock waiting for a cleaner that was never woken.
        self.on_space_pressure = lambda: None
        # Called after any segment is retired (wear-out, erase-fail, or
        # grown-bad block); the FTL wires this to its degraded-mode
        # capacity check.
        self.on_segment_retired = lambda index: None

    # -- striping ----------------------------------------------------------
    def die_of_segment(self, index: int) -> int:
        return (self.segments[index].first_ppn) // self._pages_per_die

    def stripe_of_segment(self, index: int) -> int:
        return self.die_of_segment(index) % self.num_stripes

    def stripe_of_head(self, head: str) -> int:
        """A head's home stripe, from its ``.N`` suffix (0 if none)."""
        _base, _dot, suffix = head.rpartition(".")
        if _dot and suffix.isdigit():
            return int(suffix) % self.num_stripes
        return 0

    def user_head_for(self, lba: int) -> str:
        """The user head serving ``lba``: stable, so per-LBA order holds."""
        if self.user_head_count == 1:
            return "user"
        return stripe_head("user", lba % self.user_head_count)

    def user_head_names(self) -> List[str]:
        return [stripe_head("user", i) for i in range(self.user_head_count)]

    def _lock_for(self, head: str) -> Lock:
        lock = self._head_locks.get(head)
        if lock is None:
            lock = self._head_locks[head] = Lock(
                self.kernel, name=f"log.head:{head}")
        return lock

    # -- queries -----------------------------------------------------------
    @property
    def open_segment(self) -> Optional[Segment]:
        """The first foreground (user) append head's open segment."""
        return self._open.get("user")

    @property
    def gc_open_segment(self) -> Optional[Segment]:
        """The cleaner's default append head's open segment."""
        return self._open.get("gc")

    def head_names(self) -> List[str]:
        return sorted(self._open)

    def free_segment_count(self, stripe: Optional[int] = None) -> int:
        if stripe is not None:
            return len(self._free[stripe])
        return sum(len(free) for free in self._free)

    @property
    def reserve_target(self) -> int:
        """Segments kept aside for privileged (cleaner) draws."""
        return self._reserve_target

    def reserve_segment_count(self, stripe: Optional[int] = None) -> int:
        if stripe is not None:
            return len(self._reserve[stripe])
        return sum(len(reserve) for reserve in self._reserve)

    def closed_segments(self, stripe: Optional[int] = None) -> List[Segment]:
        return [s for s in self.segments
                if s.state is SegmentState.CLOSED
                and (stripe is None or self.stripe_of_segment(s.index) == stripe)]

    def segment_of(self, ppn: int) -> Segment:
        seg = self.segments[ppn // self.segment_pages]
        if not seg.contains(ppn):
            raise FtlError(f"ppn {ppn} not in computed segment")
        return seg

    # -- appending -----------------------------------------------------------
    def append(self, header: OobHeader, data: Optional[bytes],
               privileged: bool = False,
               head: Optional[str] = None,
               site: Optional[str] = None) -> Generator:
        """Append one packet at an append head.

        Returns ``(ppn, done_event)``; the event triggers when the die
        program completes (callers wanting durability yield it).
        ``privileged`` lets the caller (the cleaner, and management
        operations that release space) dip into the reserve pool when
        the general free lists are empty.  ``head`` selects the open
        segment: defaults to "user" ("gc" when privileged); the FTL
        passes ``user_head_for(lba)`` for foreground writes and the
        cleaner passes stripe-qualified GC heads.  ``site`` overrides
        the derived crash-site name (the cleaner tags its re-appends
        "gc.copy"/"gc.note" since the packet kind alone cannot tell a
        copy-forward from an original append).

        The head's lock is held across program-fail retries — a parked
        writer slipping in between a failure and its retry would append
        a newer sequence number first and break per-head monotonicity —
        but *not* while parked waiting for free space, so the cleaner
        can still append its copy-forwards; holding it there would
        deadlock the whole device.
        """
        if head is None:
            head = "gc" if privileged else "user"
        if site is None:
            site = append_site(header.kind, head)
        lock = self._lock_for(head)
        is_user = head.startswith("user")
        fails = 0
        while True:
            if not lock.try_acquire():
                yield lock.acquire()
            wait_ev: Optional[Event] = None
            try:
                while True:
                    if races.enabled:
                        races.note(self.kernel, f"log.head:{head}", "w")
                    seg = self._open.get(head)
                    if seg is None or seg.next_offset >= seg.npages:
                        wait_ev = yield from self._open_new_segment(privileged,
                                                                    head)
                        if wait_ev is not None:
                            break
                        seg = self._open[head]
                    ppn = seg.first_ppn + seg.next_offset
                    seg.next_offset += 1
                    if sanitize.enabled and is_user:
                        # Foreground appends stamp fresh sequence
                        # numbers: strict monotonicity per user head is
                        # what the per-head recovery ordering argument
                        # rests on.  (Epoch monotonicity is enforced at
                        # the stamp's source, the snapshot tree —
                        # writable activations legitimately append older
                        # fork epochs here.)
                        _last_epoch, last_seq = self._san_last.get(
                            head, (-1, -1))
                        sanitize.check(
                            header.seq > last_seq,
                            f"seq not strictly increasing on head {head}: "
                            f"{header.seq} after {last_seq}")
                    # The slot is committed; hand the program to the
                    # die's submission queue and wait for its ack (bus
                    # transfer done, contents latched).
                    self.device.power_check(_HEAD_COMMIT_PRE)
                    ack, done = self.device.queues.submit(
                        ppn, header, data, site)
                    try:
                        yield ack
                    except ProgramFailError:
                        # Self-healing re-allocation: the slot is burned
                        # (program order advanced past unreadable
                        # residue) but the payload is still in RAM, so
                        # retry on the next PPN.  Nothing downstream saw
                        # this PPN — the caller installs mappings and
                        # validity bits only from the PPN we return, so
                        # they follow the final location for free.
                        fails += 1
                        self.stats.program_fails += 1
                        full = seg.next_offset >= seg.npages
                        bad = self.device.block_is_bad(
                            ppn // self.device.geometry.pages_per_block)
                        if full or bad:
                            # A grown-bad block poisons the whole
                            # segment: close it now (the cleaner will
                            # salvage and retire it) and reopen
                            # elsewhere on the next pass.
                            seg.state = SegmentState.CLOSED
                            self._open[head] = None
                        if fails > MAX_PROGRAM_RETRIES:
                            raise
                        continue
                    if sanitize.enabled and is_user:
                        self._san_last[head] = (header.epoch, header.seq)
                    if seg.next_offset >= seg.npages:
                        # Close eagerly: a full segment is immediately
                        # visible to the cleaner as a candidate.
                        seg.state = SegmentState.CLOSED
                        self._open[head] = None
                    self.stats.appends += 1
                    per_head = self.stats.per_head_appends
                    per_head[head] = per_head.get(head, 0) + 1
                    if data is not None:
                        per_bytes = self.stats.per_head_bytes
                        per_bytes[head] = per_bytes.get(head, 0) + len(data)
                    return ppn, done
            finally:
                lock.release()
            started = self.kernel.now
            yield wait_ev
            self.stats.stall_ns += self.kernel.now - started

    def _open_new_segment(self, privileged: bool, head: str) -> Generator:
        """Open a fresh segment; returns a wait event instead if out of space."""
        stripe = self.stripe_of_head(head)
        while True:
            if races.enabled:
                races.note(self.kernel, f"log.head:{head}", "w")
            index = self._pop_free_index(privileged, stripe)
            if index is None:
                ev = self.kernel.event()
                self._space_waiters.append(ev)
                self.stats.stalls += 1
                self.on_space_pressure()
                return ev
            seg = self.segments[index]
            if self._segment_has_bad_block(seg):
                # A grown-bad block anywhere in the segment makes it
                # unusable as an allocation unit: retire it for good
                # and draw again.
                self.stats.segments_skipped_bad += 1
                self.retire_segment(index)
                continue
            if self._open.get(head) is not None:
                self._open[head].state = SegmentState.CLOSED
                self._open[head] = None
            seg.state = SegmentState.OPEN
            seg.seq = self._next_seg_seq
            self._next_seg_seq += 1
            seg.next_offset = 1
            self._open[head] = seg
            self.stats.segments_opened += 1
            opens = self.stats.per_stripe_opens
            seg_stripe = self.stripe_of_segment(index)
            opens[seg_stripe] = opens.get(seg_stripe, 0) + 1
            header = OobHeader(kind=PageKind.SEGMENT_HEADER, lba=seg.seq)
            ack, done = self.device.queues.submit(
                seg.first_ppn, header, None, sites.LOG_SEGHDR)
            try:
                yield ack  # lint: allow-yield-straddle(the caller's per-head lock span in append() covers this whole yield-from; a per-function scan cannot see the interprocedural span)
            except ProgramFailError:
                # Header slot burned: close the crippled segment (the
                # cleaner/recovery will repair or retire it) and draw
                # another.  A segment whose header failed holds no
                # packets, so nothing is lost.
                self.stats.program_fails += 1
                seg.state = SegmentState.CLOSED
                self._open[head] = None
                continue
            del done  # segment headers need not be durable before use
            return None

    def _segment_has_bad_block(self, seg: Segment) -> bool:
        device = self.device
        if device.faults is None:
            return False
        first_block = seg.first_ppn // device.geometry.pages_per_block
        return any(device.block_is_bad(block)
                   for block in range(first_block,
                                      first_block + self.blocks_per_segment))

    def _pop_free_index(self, privileged: bool,
                        stripe: int) -> Optional[int]:
        """Draw a free segment, preferring ``stripe`` (die affinity).

        Affinity is a performance preference, not a correctness
        constraint: when the home stripe is dry the head borrows from
        the next stripe over rather than stalling while free space
        exists elsewhere.  Privileged draws fall back to the reserve
        pools in the same order.
        """
        if not self._alloc_lock.try_acquire():
            raise FtlError("allocator lock contended in _pop_free_index: "
                           "a free-pool critical section grew a yield")
        try:
            if races.enabled:
                races.note(self.kernel, "log.free", "w")
            order = [(stripe + i) % self.num_stripes
                     for i in range(self.num_stripes)]
            for candidate in order:
                if self._free[candidate]:
                    return self._free[candidate].pop(0)
            if privileged:
                for candidate in order:
                    if self._reserve[candidate]:
                        return self._reserve[candidate].pop(0)
                raise OutOfSpaceError(
                    "cleaner exhausted its reserve segments")
            return None
        finally:
            self._alloc_lock.release()

    def force_close_head(self, head: Optional[str] = None,
                         stripe: Optional[int] = None) -> bool:
        """Close a partially-written head segment (GC escape hatch).

        At very high utilization all reclaimable pages can sit in the
        open head segments while every closed segment is fully valid;
        padding out and closing a head makes its stale pages cleanable.
        With ``head`` None, tries every user head (restricted to those
        homed on ``stripe`` when given).  Refuses (returns False) if an
        append is in flight on the head or the head is empty.
        """
        if head is None:
            for name in self.user_head_names():
                if stripe is not None and self.stripe_of_head(name) != stripe:
                    continue
                if self.force_close_head(name):
                    return True
            return False
        lock = self._lock_for(head)
        if not lock.try_acquire():
            # An append is in flight on this head; closing under it
            # would yank the segment out from beneath its retry loop.
            return False
        try:
            seg = self._open.get(head)
            if seg is None or seg.next_offset <= 1:
                return False
            if races.enabled:
                races.note(self.kernel, f"log.head:{head}", "w")
            seg.state = SegmentState.CLOSED
            self._open[head] = None
            return True
        finally:
            lock.release()

    # -- reclamation -----------------------------------------------------------
    def release_segment(self, index: int) -> None:
        """Return an erased segment to the pools (reserve refills first)."""
        seg = self.segments[index]
        if seg.state is not SegmentState.CLOSED:
            raise FtlError(f"segment {index} not CLOSED (is {seg.state})")
        first_block = seg.first_ppn // self.device.geometry.pages_per_block
        for block in range(first_block, first_block + self.blocks_per_segment):
            if not self.device.array.block_is_erased(block):
                raise FtlError(
                    f"segment {index} released without erasing block {block}")
        seg.state = SegmentState.FREE
        seg.seq = -1
        seg.next_offset = 0
        stripe = self.stripe_of_segment(index)
        if not self._alloc_lock.try_acquire():
            raise FtlError("allocator lock contended in release_segment: "
                           "a free-pool critical section grew a yield")
        try:
            if races.enabled:
                races.note(self.kernel, "log.free", "w")
            if self.reserve_segment_count() < self._reserve_target:
                self._reserve[stripe].append(index)
                return
            self._free[stripe].append(index)
        finally:
            self._alloc_lock.release()
        # Waking stalled writers happens outside the span: trigger()
        # schedules resumptions, and the span stays pure pool mutation.
        waiters, self._space_waiters = self._space_waiters, []
        for ev in waiters:
            ev.trigger()

    def retire_segment(self, index: int) -> None:
        """Permanently remove a worn-out segment from circulation.

        The device keeps working with reduced physical capacity — the
        graceful end-of-life behaviour real FTLs implement.
        """
        seg = self.segments[index]
        if seg.state not in (SegmentState.CLOSED, SegmentState.FREE):
            raise FtlError(
                f"cannot retire segment {index} in state {seg.state}")
        if not self._alloc_lock.try_acquire():
            raise FtlError("allocator lock contended in retire_segment: "
                           "a free-pool critical section grew a yield")
        try:
            if races.enabled:
                races.note(self.kernel, "log.free", "w")
            for pool in (self._free, self._reserve):
                for entries in pool:
                    if index in entries:
                        entries.remove(index)
        finally:
            self._alloc_lock.release()
        seg.state = SegmentState.RETIRED
        seg.seq = -1
        self.on_segment_retired(index)

    def retired_segment_count(self) -> int:
        return sum(1 for seg in self.segments
                   if seg.state is SegmentState.RETIRED)

    def fail_waiters(self, error: BaseException) -> None:
        """Propagate an unrecoverable out-of-space condition to writers."""
        waiters, self._space_waiters = self._space_waiters, []
        for ev in waiters:
            ev.fail(error)

    # -- recovery support -----------------------------------------------------
    def adopt_state(self, seg_states: Dict[int, Tuple[str, int, int]],
                    next_seg_seq: int,
                    open_heads: Optional[Dict[str, int]]) -> None:
        """Restore segment bookkeeping from checkpoint/recovery.

        ``seg_states`` maps index -> (state_name, seq, next_offset);
        ``open_heads`` maps head name -> open segment index (None after
        crash recovery: all recovered segments come back CLOSED).
        """
        if not self._alloc_lock.try_acquire():
            raise FtlError("allocator lock contended in adopt_state: "
                           "a free-pool critical section grew a yield")
        try:
            if races.enabled:
                races.note(self.kernel, "log.free", "w")
            self._free = [[] for _ in range(self.num_stripes)]
            self._reserve = [[] for _ in range(self.num_stripes)]
            self._open = {}
            self._san_last = {}
            for seg in self.segments:
                state_name, seq, next_offset = seg_states[seg.index]
                seg.state = SegmentState(state_name)
                seg.seq = seq
                seg.next_offset = next_offset
                if seg.state is SegmentState.FREE:
                    stripe = self.stripe_of_segment(seg.index)
                    if self.reserve_segment_count() < self._reserve_target:
                        self._reserve[stripe].append(seg.index)
                    else:
                        self._free[stripe].append(seg.index)
        finally:
            self._alloc_lock.release()
        self._next_seg_seq = next_seg_seq
        if open_heads:
            for head, index in open_heads.items():
                self._open[head] = self.segments[index]

    def dump_state(self):
        seg_states = {
            seg.index: (seg.state.value, seg.seq, seg.next_offset)
            for seg in self.segments
        }
        open_heads = {
            head: seg.index for head, seg in self._open.items()
            if seg is not None
        }
        return seg_states, self._next_seg_seq, open_heads

"""The log: physical space carved into segments with one append head.

A *segment* is the cleaning/erase unit (paper §5.2.3): one or more
whole erase blocks.  Segments move through FREE -> OPEN -> CLOSED and
back to FREE when the cleaner reclaims them.  Each segment's first page
is a SEGMENT_HEADER recording the segment's allocation sequence number,
which is how log-order is recovered after a crash.

Appends serialize on the log head (one open segment), which mirrors a
single log-structured write front.  A small *reserve* of free segments
is only allocatable by the cleaner, so cleaning can always make forward
progress even when foreground writers have exhausted free space.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict, Generator, List, Optional, Tuple

from repro import sanitize
from repro.errors import FtlError, OutOfSpaceError, ProgramFailError
from repro.nand.device import NandDevice
from repro.nand.oob import OobHeader, PageKind
from repro.sim import Event, Kernel, Lock
from repro.torture import sites


# Crash-site names for power-cut injection (see repro.torture.sites,
# the central registry): the site of a page program is derived from
# what is being appended and on which head, so a cut can target e.g.
# "mid cleaner copy-forward" (gc.copy:mid) independently of "mid
# foreground write" (write.data:mid).
_NOTE_SITES = {
    PageKind.NOTE_TRIM: sites.NOTE_TRIM,
    PageKind.NOTE_SNAP_CREATE: sites.NOTE_SNAP_CREATE,
    PageKind.NOTE_SNAP_DELETE: sites.NOTE_SNAP_DELETE,
    PageKind.NOTE_SNAP_ACTIVATE: sites.NOTE_SNAP_ACTIVATE,
    PageKind.NOTE_SNAP_DEACTIVATE: sites.NOTE_SNAP_DEACTIVATE,
}


def append_site(kind: PageKind, head: str) -> str:
    """Crash-site name for appending a ``kind`` packet at ``head``.

    Note kinds map to their ``note.*`` name regardless of head:
    delete/deactivate notes are privileged (head "gc") yet are original
    foreground appends.  The cleaner distinguishes its re-appends by
    passing an explicit ``site`` to :meth:`Log.append`.
    """
    if kind is PageKind.DATA:
        return sites.WRITE_DATA if head == "user" else sites.GC_COPY
    if kind is PageKind.CHECKPOINT:
        return sites.CHECKPOINT_PAGE
    return _NOTE_SITES.get(kind, sites.LOG_OTHER)


class SegmentState(enum.Enum):
    FREE = "free"
    OPEN = "open"
    CLOSED = "closed"
    RETIRED = "retired"   # a block wore out; never allocated again


@dataclass
class Segment:
    """Bookkeeping for one segment of the log."""

    index: int
    first_ppn: int
    npages: int
    state: SegmentState = SegmentState.FREE
    seq: int = -1            # allocation sequence number (log order)
    next_offset: int = 0     # next page to program, relative to first_ppn

    @property
    def data_capacity(self) -> int:
        """Pages available for packets (excludes the segment header)."""
        return self.npages - 1

    @property
    def end_ppn(self) -> int:
        return self.first_ppn + self.npages

    def contains(self, ppn: int) -> bool:
        return self.first_ppn <= ppn < self.end_ppn

    def written_ppns(self, start_offset: int = 1) -> range:
        """Packet pages programmed so far (excludes the header page).

        The range is a stable snapshot of the written extent at call
        time: concurrent appends grow ``next_offset`` but never change
        pages already inside the range, so scan loops may iterate it
        directly without materializing a copy.  ``start_offset`` lets
        delta rescans resume from a previously recorded extent.
        """
        return range(self.first_ppn + max(1, start_offset),
                     self.first_ppn + self.next_offset)


@dataclass
class LogStats:
    appends: int = 0
    segments_opened: int = 0
    stall_ns: int = 0        # virtual time writers spent waiting for space
    stalls: int = 0
    program_fails: int = 0   # failed programs absorbed by re-allocation
    segments_skipped_bad: int = 0  # retired at open: grown-bad block


# A program-fail burns one page slot and the append retries on the next
# PPN (possibly in a fresh segment).  A medium bad enough to fail this
# many programs of a single payload is beyond healing — re-raise.
MAX_PROGRAM_RETRIES = 8


class Log:
    """Segment allocator plus the single append head."""

    def __init__(self, kernel: Kernel, device: NandDevice,
                 blocks_per_segment: int = 1,
                 reserve_segments: int = 2) -> None:
        geometry = device.geometry
        if geometry.total_blocks % blocks_per_segment:
            raise FtlError(
                f"{geometry.total_blocks} blocks not divisible by "
                f"blocks_per_segment={blocks_per_segment}")
        self.kernel = kernel
        self.device = device
        self.blocks_per_segment = blocks_per_segment
        self.segment_pages = blocks_per_segment * geometry.pages_per_block
        self.segment_count = geometry.total_blocks // blocks_per_segment
        if reserve_segments >= self.segment_count - 1:
            raise FtlError("reserve would leave no writable segments")
        self.segments: List[Segment] = [
            Segment(index=i, first_ppn=i * self.segment_pages,
                    npages=self.segment_pages)
            for i in range(self.segment_count)
        ]
        self._free: List[int] = list(range(self.segment_count))
        self._reserve_target = reserve_segments
        self._reserve: List[int] = [self._free.pop() for _ in range(reserve_segments)]
        # Named append heads: foreground writes use "user"; cleaner
        # copy-forwards use "gc" (or "gc-hot"/"gc-cold" when epoch
        # segregation is on, paper §5.4.2).  Sharing one head would let
        # foreground writes leak into reserve segments the cleaner
        # opened, starving it.
        self._open: Dict[str, Optional[Segment]] = {"user": None, "gc": None}
        self._next_seg_seq = 0
        self._alloc_lock = Lock(kernel)
        self._space_waiters: List[Event] = []
        self.stats = LogStats()
        # Sanitizer state: last (epoch, seq) appended on the user head.
        # Foreground appends stamp the active epoch and a fresh
        # sequence number, so both must be monotonic there (cleaner
        # heads copy old packets and are exempt).
        self._san_last_user: Tuple[int, int] = (-1, -1)
        # Called when a writer is about to stall on free space; the FTL
        # wires this to kick the cleaner so a stalled writer can't
        # deadlock waiting for a cleaner that was never woken.
        self.on_space_pressure = lambda: None
        # Called after any segment is retired (wear-out, erase-fail, or
        # grown-bad block); the FTL wires this to its degraded-mode
        # capacity check.
        self.on_segment_retired = lambda index: None

    # -- queries -----------------------------------------------------------
    @property
    def open_segment(self) -> Optional[Segment]:
        """The foreground (user) append head's open segment."""
        return self._open.get("user")

    @property
    def gc_open_segment(self) -> Optional[Segment]:
        """The cleaner's default append head's open segment."""
        return self._open.get("gc")

    def head_names(self) -> List[str]:
        return sorted(self._open)

    def free_segment_count(self) -> int:
        return len(self._free)

    def reserve_segment_count(self) -> int:
        return len(self._reserve)

    def closed_segments(self) -> List[Segment]:
        return [s for s in self.segments if s.state is SegmentState.CLOSED]

    def segment_of(self, ppn: int) -> Segment:
        seg = self.segments[ppn // self.segment_pages]
        if not seg.contains(ppn):
            raise FtlError(f"ppn {ppn} not in computed segment")
        return seg

    # -- appending -----------------------------------------------------------
    def append(self, header: OobHeader, data: Optional[bytes],
               privileged: bool = False,
               head: Optional[str] = None,
               site: Optional[str] = None) -> Generator:
        """Append one packet at an append head.

        Returns ``(ppn, done_event)``; the event triggers when the die
        program completes (callers wanting durability yield it).
        ``privileged`` lets the caller (the cleaner, and management
        operations that release space) dip into the reserve pool when
        the general free list is empty.  ``head`` selects the open
        segment: defaults to "user" ("gc" when privileged); the cleaner
        passes "gc-hot"/"gc-cold" for epoch segregation.  ``site``
        overrides the derived crash-site name (the cleaner tags its
        re-appends "gc.copy"/"gc.note" since the packet kind alone
        cannot tell a copy-forward from an original append).

        When the log is out of free segments, the allocation lock is
        dropped while waiting so the cleaner can still append its
        copy-forwards — holding it would deadlock the whole device.
        """
        if head is None:
            head = "gc" if privileged else "user"
        if site is None:
            site = append_site(header.kind, head)
        fails = 0
        while True:
            if not self._alloc_lock.try_acquire():
                yield self._alloc_lock.acquire()
            wait_ev: Optional[Event] = None
            try:
                seg = self._open.get(head)
                if seg is None or seg.next_offset >= seg.npages:
                    wait_ev = yield from self._open_new_segment(privileged,
                                                                head)
                if wait_ev is None:
                    seg = self._open[head]
                    ppn = seg.first_ppn + seg.next_offset
                    seg.next_offset += 1
                    if sanitize.enabled and head == "user":
                        # Foreground appends stamp fresh sequence
                        # numbers: strict monotonicity on the user head
                        # is what lets recovery order the log.  (Epoch
                        # monotonicity is enforced at the stamp's
                        # source, the snapshot tree — writable
                        # activations legitimately append older fork
                        # epochs here.)
                        last_epoch, last_seq = self._san_last_user
                        sanitize.check(
                            header.seq > last_seq,
                            f"seq not strictly increasing on user head: "
                            f"{header.seq} after {last_seq}")
                    try:
                        done = yield from self.device.program_page(
                            ppn, header, data, site=site)
                    except ProgramFailError:
                        # Self-healing re-allocation: the slot is burned
                        # (program order advanced past unreadable
                        # residue) but the payload is still in RAM, so
                        # retry on the next PPN.  Nothing downstream saw
                        # this PPN — the caller installs mappings and
                        # validity bits only from the PPN we return, so
                        # they follow the final location for free.
                        fails += 1
                        self.stats.program_fails += 1
                        full = seg.next_offset >= seg.npages
                        bad = self.device.block_is_bad(
                            ppn // self.device.geometry.pages_per_block)
                        if full or bad:
                            # A grown-bad block poisons the whole
                            # segment: close it now (the cleaner will
                            # salvage and retire it) and reopen
                            # elsewhere on the next pass.
                            seg.state = SegmentState.CLOSED
                            self._open[head] = None
                        if fails > MAX_PROGRAM_RETRIES:
                            raise
                        continue
                    if sanitize.enabled and head == "user":
                        self._san_last_user = (header.epoch, header.seq)
                    if seg.next_offset >= seg.npages:
                        # Close eagerly: a full segment is immediately
                        # visible to the cleaner as a candidate.
                        seg.state = SegmentState.CLOSED
                        self._open[head] = None
                    self.stats.appends += 1
                    return ppn, done
            finally:
                self._alloc_lock.release()
            started = self.kernel.now
            yield wait_ev
            self.stats.stall_ns += self.kernel.now - started

    def _open_new_segment(self, privileged: bool, head: str) -> Generator:
        """Open a fresh segment; returns a wait event instead if out of space."""
        while True:
            index = self._pop_free_index(privileged)
            if index is None:
                ev = self.kernel.event()
                self._space_waiters.append(ev)
                self.stats.stalls += 1
                self.on_space_pressure()
                return ev
            seg = self.segments[index]
            if self._segment_has_bad_block(seg):
                # A grown-bad block anywhere in the segment makes it
                # unusable as an allocation unit: retire it for good
                # and draw again.
                self.stats.segments_skipped_bad += 1
                self.retire_segment(index)
                continue
            if self._open.get(head) is not None:
                self._open[head].state = SegmentState.CLOSED
                self._open[head] = None
            seg.state = SegmentState.OPEN
            seg.seq = self._next_seg_seq
            self._next_seg_seq += 1
            seg.next_offset = 1
            self._open[head] = seg
            self.stats.segments_opened += 1
            header = OobHeader(kind=PageKind.SEGMENT_HEADER, lba=seg.seq)
            try:
                done = yield from self.device.program_page(
                    seg.first_ppn, header, None, site=sites.LOG_SEGHDR)
            except ProgramFailError:
                # Header slot burned: close the crippled segment (the
                # cleaner/recovery will repair or retire it) and draw
                # another.  A segment whose header failed holds no
                # packets, so nothing is lost.
                self.stats.program_fails += 1
                seg.state = SegmentState.CLOSED
                self._open[head] = None
                continue
            del done  # segment headers need not be durable before use
            return None

    def _segment_has_bad_block(self, seg: Segment) -> bool:
        device = self.device
        if device.faults is None:
            return False
        first_block = seg.first_ppn // device.geometry.pages_per_block
        return any(device.block_is_bad(block)
                   for block in range(first_block,
                                      first_block + self.blocks_per_segment))

    def _pop_free_index(self, privileged: bool) -> Optional[int]:
        if self._free:
            return self._free.pop(0)
        if privileged and self._reserve:
            return self._reserve.pop(0)
        if privileged:
            raise OutOfSpaceError("cleaner exhausted its reserve segments")
        return None

    def force_close_head(self, head: str = "user") -> bool:
        """Close a partially-written head segment (GC escape hatch).

        At very high utilization all reclaimable pages can sit in the
        open head while every closed segment is fully valid; padding
        out and closing the head makes its stale pages cleanable.
        Refuses (returns False) if an append is in flight or the head
        is empty.
        """
        if self._alloc_lock.locked:
            return False
        seg = self._open.get(head)
        if seg is None or seg.next_offset <= 1:
            return False
        seg.state = SegmentState.CLOSED
        self._open[head] = None
        return True

    # -- reclamation -----------------------------------------------------------
    def release_segment(self, index: int) -> None:
        """Return an erased segment to the pools (reserve refills first)."""
        seg = self.segments[index]
        if seg.state is not SegmentState.CLOSED:
            raise FtlError(f"segment {index} not CLOSED (is {seg.state})")
        first_block = seg.first_ppn // self.device.geometry.pages_per_block
        for block in range(first_block, first_block + self.blocks_per_segment):
            if not self.device.array.block_is_erased(block):
                raise FtlError(
                    f"segment {index} released without erasing block {block}")
        seg.state = SegmentState.FREE
        seg.seq = -1
        seg.next_offset = 0
        if len(self._reserve) < self._reserve_target:
            self._reserve.append(index)
        else:
            self._free.append(index)
            waiters, self._space_waiters = self._space_waiters, []
            for ev in waiters:
                ev.trigger()

    def retire_segment(self, index: int) -> None:
        """Permanently remove a worn-out segment from circulation.

        The device keeps working with reduced physical capacity — the
        graceful end-of-life behaviour real FTLs implement.
        """
        seg = self.segments[index]
        if seg.state not in (SegmentState.CLOSED, SegmentState.FREE):
            raise FtlError(
                f"cannot retire segment {index} in state {seg.state}")
        if index in self._free:
            self._free.remove(index)
        if index in self._reserve:
            self._reserve.remove(index)
        seg.state = SegmentState.RETIRED
        seg.seq = -1
        self.on_segment_retired(index)

    def retired_segment_count(self) -> int:
        return sum(1 for seg in self.segments
                   if seg.state is SegmentState.RETIRED)

    def fail_waiters(self, error: BaseException) -> None:
        """Propagate an unrecoverable out-of-space condition to writers."""
        waiters, self._space_waiters = self._space_waiters, []
        for ev in waiters:
            ev.fail(error)

    # -- recovery support -----------------------------------------------------
    def adopt_state(self, seg_states: Dict[int, Tuple[str, int, int]],
                    next_seg_seq: int,
                    open_heads: Optional[Dict[str, int]]) -> None:
        """Restore segment bookkeeping from checkpoint/recovery.

        ``seg_states`` maps index -> (state_name, seq, next_offset);
        ``open_heads`` maps head name -> open segment index (None after
        crash recovery: all recovered segments come back CLOSED).
        """
        self._free = []
        self._reserve = []
        self._open = {"user": None, "gc": None}
        self._san_last_user = (-1, -1)
        for seg in self.segments:
            state_name, seq, next_offset = seg_states[seg.index]
            seg.state = SegmentState(state_name)
            seg.seq = seq
            seg.next_offset = next_offset
            if seg.state is SegmentState.FREE:
                if len(self._reserve) < self._reserve_target:
                    self._reserve.append(seg.index)
                else:
                    self._free.append(seg.index)
        self._next_seg_seq = next_seg_seq
        if open_heads:
            for head, index in open_heads.items():
                self._open[head] = self.segments[index]

    def dump_state(self):
        seg_states = {
            seg.index: (seg.state.value, seg.seq, seg.next_offset)
            for seg in self.segments
        }
        open_heads = {
            head: seg.index for head, seg in self._open.items()
            if seg is not None
        }
        return seg_states, self._next_seg_seq, open_heads

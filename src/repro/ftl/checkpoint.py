"""Clean-shutdown checkpointing (paper §5.5: "the device state is fully
checkpointed only on a clean shutdown").

The checkpoint is the pickled FTL state (forward map items, validity
pages, sequence counters, live notes, and whatever extra state the
ioSnap layer adds via ``_dump_extra``), chunked into CHECKPOINT pages
appended to the log.  The superblock — the device's small out-of-band
config area — records where the chunks live, a generation number and a
CRC32 over the serialized blob, plus the log's segment bookkeeping and
the ``clean`` flag that decides between checkpoint restore and log-scan
recovery at the next open.

Torn-checkpoint handling: ``restore_checkpoint`` validates a candidate
checkpoint *completely* (read every chunk, CRC, unpickle, version
check) before mutating any FTL state, so a bad checkpoint can never
leave a half-restored device behind.  If the newest generation fails
validation, the restore falls back to the previous complete generation
(its descriptor is stashed in the superblock on every checkpoint
write) and then replays the log on top of it — the scan-based rebuild
supersedes whatever the stale generation said, so the result is
current; the validated old generation is what proves the fallback path
is intact rather than raising outright.  Only when no generation
validates does the restore raise, and ``VslDevice.open`` falls back to
pure log-scan recovery.
"""

from __future__ import annotations

import pickle
import zlib
from typing import TYPE_CHECKING, Generator, List, Optional

from repro.errors import CheckpointError, PowerLossError
from repro.ftl.btree import BPlusTree
from repro.nand.oob import OobHeader, PageKind
from repro.torture import sites

if TYPE_CHECKING:  # pragma: no cover
    from repro.ftl.vsl import VslDevice

CHECKPOINT_VERSION = 4
# Older images we can still restore.  v3 added the generation-stamped
# epoch-summary index inside ``extra``; restoring a v1/v2 image simply
# finds no index and rebuilds it from media.  v4 added the
# flash-resident-map option: such images carry ``map_items: None`` plus
# a ``map_gtd`` directory image (the map's pages already live on
# flash), while RAM-map v4 images look exactly like v3.
_COMPAT_VERSIONS = (1, 2, 3, CHECKPOINT_VERSION)


def write_checkpoint(ftl: "VslDevice") -> Generator:
    """Serialize FTL state onto the log and mark the superblock clean.

    The caller must have stopped the cleaner and waited for it to park
    (see ``VslDevice._shutdown_proc``), so the state captured here
    cannot change under us.
    """
    sb = ftl.nand.superblock
    generation = sb.get("checkpoint_gen", 0) + 1
    if ftl.map_is_cached:
        # Flash is the map's home: make every dirty translation page
        # durable, then persist only the (small) directory.  The full
        # map never transits the checkpoint blob.
        yield from ftl.map.flush_all_proc()
        map_items = None
        map_gtd = ftl.map.dump_gtd()
    else:
        map_items = list(ftl.map.items())
        map_gtd = None
    state = {
        "version": CHECKPOINT_VERSION,
        "generation": generation,
        "seq": ftl._next_seq,
        "map_items": map_items,
        "map_gtd": map_gtd,
        "notes": dict(ftl._note_registry),
        "extra": ftl._dump_extra(generation),
    }
    blob = pickle.dumps(state)
    crc = zlib.crc32(blob)
    chunk_size = ftl.nand.geometry.page_size
    ppns = []
    for index in range(0, len(blob), chunk_size):
        chunk = blob[index:index + chunk_size]
        header = OobHeader(kind=PageKind.CHECKPOINT, lba=index // chunk_size,
                           epoch=0, seq=ftl._bump_seq(), length=len(chunk))
        # Privileged: with the cleaner stopped nobody can free space,
        # so the checkpoint may dip into the cleaner's reserve.
        ppn, done = yield from ftl.log.append(header, chunk, privileged=True)
        ppns.append(ppn)
        yield done  # checkpoints must be durable

    # Stash the outgoing generation's descriptor before overwriting it:
    # if the superblock update below completes but the *next* shutdown
    # tears its checkpoint, restore can still find this one.  (Its
    # pages may be cleaned during the coming run; validation decides.)
    prev = None
    if sb.get("checkpoint_ppns") is not None:
        prev = {
            "ppns": list(sb["checkpoint_ppns"]),
            "crc": sb.get("checkpoint_crc"),
            "gen": sb.get("checkpoint_gen", 0),
        }

    # The superblock write is the checkpoint's commit point: a cut
    # before it leaves clean=False and the next open scans the log.
    ftl.nand.power_check(sites.phased(sites.CHECKPOINT_SUPERBLOCK, "pre"))
    sb.update({
        "clean": True,
        "checkpoint_ppns": ppns,
        "checkpoint_crc": crc,
        "checkpoint_gen": generation,
        "prev_checkpoint": prev,
        "log_state": ftl.log.dump_state(),
        "next_seq": ftl._next_seq,
    })


def _read_and_validate(ftl: "VslDevice", ppns: List[int],
                       crc: Optional[int]) -> Generator:
    """Read one checkpoint generation and validate it end to end.

    Raises :class:`CheckpointError` on any problem; mutates nothing.
    """
    blob = b""
    for ppn in ppns:
        try:
            record = yield from ftl.nand.read_page(ppn)
        except PowerLossError:
            # Never convert an injected power cut into a CheckpointError:
            # the torture rig must see the cut propagate.
            raise
        except Exception as exc:  # noqa: BLE001 - any media error is fatal
            raise CheckpointError(
                f"checkpoint page {ppn} unreadable: {exc}") from exc
        if record.header.kind is not PageKind.CHECKPOINT:
            raise CheckpointError(f"ppn {ppn} is not a checkpoint page")
        if record.data is None:
            raise CheckpointError(f"checkpoint page {ppn} lost its payload")
        blob += record.data[:record.header.length]
    if crc is not None and zlib.crc32(blob) != crc:
        raise CheckpointError("checkpoint CRC mismatch (torn or corrupt)")
    try:
        state = pickle.loads(blob)
    except Exception as exc:  # lint: allow-broad-except(pickle.loads raises arbitrary exception types on corrupt input; no media I/O happens here so a power cut cannot be swallowed)
        raise CheckpointError(f"corrupt checkpoint: {exc}") from exc
    version = state.get("version")
    if version not in _COMPAT_VERSIONS:
        raise CheckpointError(f"unsupported checkpoint version {version}")
    for key in ("seq", "map_items", "notes", "extra"):
        if key not in state:
            raise CheckpointError(f"checkpoint missing field {key!r}")
    return state


def restore_checkpoint(ftl: "VslDevice") -> Generator:
    """Rebuild FTL state from the checkpoint referenced by the superblock.

    Tries the newest generation first, then the stashed previous
    generation.  State is only mutated after a generation validates
    completely, so a failed restore leaves a pristine instance.
    """
    sb = ftl.nand.superblock
    ppns = sb.get("checkpoint_ppns")
    if not sb.get("clean") or ppns is None:
        raise CheckpointError("superblock has no clean checkpoint")

    attempts = [(ppns, sb.get("checkpoint_crc"), False)]
    prev = sb.get("prev_checkpoint")
    if prev and prev.get("ppns"):
        attempts.append((prev["ppns"], prev.get("crc"), True))

    state = None
    fallback = False
    last_error: Optional[CheckpointError] = None
    for attempt_ppns, crc, is_prev in attempts:
        try:
            state = yield from _read_and_validate(ftl, attempt_ppns, crc)
        except CheckpointError as exc:
            last_error = exc
            continue
        fallback = is_prev
        break
    if state is None:
        assert last_error is not None
        raise last_error

    # Cross-mode compatibility gate, before any state mutates.  An
    # all-RAM open of a flash-resident image (or a span mismatch the
    # other way) cannot restore from the blob — raising here sends
    # ``VslDevice.open`` down the log-scan recovery path, which
    # rebuilds the map in whichever mode this device is configured for.
    if ftl.map_is_cached:
        gtd_image = state.get("map_gtd")
        if gtd_image is not None \
                and gtd_image.get("span") != ftl.config.map_span:
            raise CheckpointError(
                f"map span mismatch: checkpoint has "
                f"{gtd_image.get('span')}, device configured for "
                f"{ftl.config.map_span}")
        if gtd_image is None and state.get("map_items") is None:
            raise CheckpointError("checkpoint carries no map image")
    elif state.get("map_items") is None:
        raise CheckpointError(
            "checkpoint carries only a GTD (written by a "
            "flash-resident-map configuration); the all-RAM map must "
            "rebuild by log scan")

    ftl._next_seq = state["seq"]
    if not ftl.map_is_cached:
        ftl.map = BPlusTree.bulk_load(state["map_items"],
                                      order=ftl.config.map_order)
        yield len(state["map_items"]) * ftl.config.cpu.map_bulk_insert_ns
    ftl._note_registry = state["notes"]
    if not fallback:
        # Adopt the log's segment bookkeeping *before* the extra-state
        # hook: the ioSnap layer cross-validates its durable epoch
        # index against each segment's adopted allocation seq, and the
        # cached map's restore below may append (a v<=3 image replays
        # its map_items through the bounded cache, flushing pages to
        # the map head) — appends need adopted heads.
        ftl.log.adopt_state(*sb["log_state"])
        ftl._load_extra(state["extra"], state.get("generation"))
        if ftl.map_is_cached:
            gtd_image = state.get("map_gtd")
            if gtd_image is not None:
                ftl.map.adopt_gtd(gtd_image)
                yield len(gtd_image["gtd"]) * \
                    ftl.config.cpu.replay_packet_ns
            else:
                yield from ftl.map.rebuild_proc(state["map_items"])
        return
    ftl._load_extra(state["extra"], state.get("generation"))

    # Fallback path: the previous generation is stale — it predates
    # the superblock's log bookkeeping and everything written since it
    # was taken.  Replay the log on top: the scan rebuilds segment
    # bookkeeping, forward map, validity, and the note registry
    # wholesale (superseding the stale images), while the validated
    # old generation established that the fallback is sound instead of
    # giving up.  Clear the stale registry first so note pages the
    # cleaner relocated after that generation cannot linger.
    from repro.ftl.recovery import recover

    ftl._note_registry = {}
    yield from recover(ftl)

"""Clean-shutdown checkpointing (paper §5.5: "the device state is fully
checkpointed only on a clean shutdown").

The checkpoint is the pickled FTL state (forward map items, validity
pages, sequence counters, live notes, and whatever extra state the
ioSnap layer adds via ``_dump_extra``), chunked into CHECKPOINT pages
appended to the log.  The superblock — the device's small out-of-band
config area — records where the chunks live plus the log's segment
bookkeeping, and the ``clean`` flag that decides between checkpoint
restore and log-scan recovery at the next open.
"""

from __future__ import annotations

import pickle
from typing import TYPE_CHECKING, Generator

from repro.errors import CheckpointError
from repro.ftl.btree import BPlusTree
from repro.nand.oob import OobHeader, PageKind

if TYPE_CHECKING:  # pragma: no cover
    from repro.ftl.vsl import VslDevice

CHECKPOINT_VERSION = 1


def write_checkpoint(ftl: "VslDevice") -> Generator:
    """Serialize FTL state onto the log and mark the superblock clean.

    The caller must have stopped the cleaner and waited for it to park
    (see ``VslDevice._shutdown_proc``), so the state captured here
    cannot change under us.
    """
    state = {
        "version": CHECKPOINT_VERSION,
        "seq": ftl._next_seq,
        "map_items": list(ftl.map.items()),
        "notes": dict(ftl._note_registry),
        "extra": ftl._dump_extra(),
    }
    blob = pickle.dumps(state)
    chunk_size = ftl.nand.geometry.page_size
    ppns = []
    for index in range(0, len(blob), chunk_size):
        chunk = blob[index:index + chunk_size]
        header = OobHeader(kind=PageKind.CHECKPOINT, lba=index // chunk_size,
                           epoch=0, seq=ftl._bump_seq(), length=len(chunk))
        # Privileged: with the cleaner stopped nobody can free space,
        # so the checkpoint may dip into the cleaner's reserve.
        ppn, done = yield from ftl.log.append(header, chunk, privileged=True)
        ppns.append(ppn)
        yield done  # checkpoints must be durable

    ftl.nand.superblock.update({
        "clean": True,
        "checkpoint_ppns": ppns,
        "log_state": ftl.log.dump_state(),
        "next_seq": ftl._next_seq,
    })


def restore_checkpoint(ftl: "VslDevice") -> Generator:
    """Rebuild FTL state from the checkpoint referenced by the superblock."""
    sb = ftl.nand.superblock
    ppns = sb.get("checkpoint_ppns")
    if not sb.get("clean") or ppns is None:
        raise CheckpointError("superblock has no clean checkpoint")

    blob = b""
    for ppn in ppns:
        try:
            record = yield from ftl.nand.read_page(ppn)
        except Exception as exc:  # noqa: BLE001 - any media error is fatal
            raise CheckpointError(
                f"checkpoint page {ppn} unreadable: {exc}") from exc
        if record.header.kind is not PageKind.CHECKPOINT:
            raise CheckpointError(f"ppn {ppn} is not a checkpoint page")
        if record.data is None:
            raise CheckpointError(f"checkpoint page {ppn} lost its payload")
        blob += record.data[:record.header.length]
    try:
        state = pickle.loads(blob)
    except Exception as exc:  # noqa: BLE001 - any unpickle failure is fatal
        raise CheckpointError(f"corrupt checkpoint: {exc}") from exc
    if state.get("version") != CHECKPOINT_VERSION:
        raise CheckpointError(
            f"unsupported checkpoint version {state.get('version')}")

    ftl._next_seq = state["seq"]
    ftl.map = BPlusTree.bulk_load(state["map_items"],
                                  order=ftl.config.map_order)
    yield len(state["map_items"]) * ftl.config.cpu.map_bulk_insert_ns
    ftl._note_registry = state["notes"]
    ftl._load_extra(state["extra"])
    ftl.log.adopt_state(*sb["log_state"])

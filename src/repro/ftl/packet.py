"""On-log packet payloads.

Every page on the log carries an :class:`~repro.nand.OobHeader` telling
the FTL what it is.  DATA pages hold user bytes.  NOTE pages hold a
small JSON payload describing a snapshot operation or trim — the
paper's "snapshot-create note", "snapshot-delete note", etc. (§5.8).
CHECKPOINT pages hold chunks of the serialized FTL state written on
clean shutdown.

Notes are tiny and must survive crashes, so they are written
synchronously (the caller waits for the die program to finish).
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass
from typing import Dict, Type

from repro.errors import FtlError
from repro.nand.oob import PageKind


def encode_payload(fields: Dict) -> bytes:
    """Serialize a note payload to bytes for the page body."""
    return json.dumps(fields, sort_keys=True).encode("utf-8")


def decode_payload(raw: bytes) -> Dict:
    try:
        return json.loads(raw.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise FtlError(f"corrupt note payload: {exc}") from exc


@dataclass(frozen=True)
class SnapCreateNote:
    """Persisted when a snapshot is created (paper §5.8, step 2).

    ``captured_epoch`` is the epoch frozen into the snapshot;
    ``new_epoch`` is the fresh epoch the active device moves to.
    Together the create notes reconstruct the epoch tree after a crash.
    """

    snap_id: int
    name: str
    captured_epoch: int
    new_epoch: int

    kind = PageKind.NOTE_SNAP_CREATE


@dataclass(frozen=True)
class SnapDeleteNote:
    """Persisted synchronously when a snapshot is deleted."""

    snap_id: int

    kind = PageKind.NOTE_SNAP_DELETE


@dataclass(frozen=True)
class SnapActivateNote:
    """Persisted when a snapshot is activated; records the fork epoch."""

    snap_id: int
    new_epoch: int

    kind = PageKind.NOTE_SNAP_ACTIVATE


@dataclass(frozen=True)
class SnapDeactivateNote:
    """Persisted when an activated snapshot is deactivated."""

    snap_id: int
    epoch: int

    kind = PageKind.NOTE_SNAP_DEACTIVATE


@dataclass(frozen=True)
class TrimNote:
    """Persisted on trim so recovery does not resurrect the LBA."""

    lba: int

    kind = PageKind.NOTE_TRIM


_NOTE_CLASSES: Dict[PageKind, Type] = {
    cls.kind: cls
    for cls in (SnapCreateNote, SnapDeleteNote, SnapActivateNote,
                SnapDeactivateNote, TrimNote)
}


def encode_note(note) -> bytes:
    """Serialize any of the note dataclasses above."""
    if type(note) not in _NOTE_CLASSES.values():
        raise FtlError(f"not a note: {note!r}")
    return encode_payload(asdict(note))


def decode_note(kind: PageKind, raw: bytes):
    """Reconstruct the note dataclass for a NOTE_* page."""
    cls = _NOTE_CLASSES.get(kind)
    if cls is None:
        raise FtlError(f"page kind {kind!r} is not a note")
    return cls(**decode_payload(raw))

"""Byte-addressable volume adapter.

Block devices speak in whole blocks; most software wants bytes.
:class:`ByteVolume` wraps any device exposing
``read_proc/write_proc/block_size/num_lbas`` (the vanilla FTL, ioSnap,
the Btrfs-like baseline, or an activated snapshot for reads) and
provides ``pread``/``pwrite`` at arbitrary offsets, doing
read-modify-write on partial blocks — the shim a filesystem or database
would sit on.
"""

from __future__ import annotations

from typing import Generator

from repro.errors import LbaError


class ByteVolume:
    """pread/pwrite over a block device, with RMW for partial blocks."""

    def __init__(self, device) -> None:
        self.device = device
        # Activated snapshots expose their FTL's geometry indirectly.
        self.kernel = getattr(device, "kernel", None) \
            or device.ftl.kernel
        self.block_size = getattr(device, "block_size", None) \
            or device.ftl.block_size
        self.size_bytes = device.num_lbas * self.block_size

    # -- synchronous façade -------------------------------------------------
    def pread(self, offset: int, size: int) -> bytes:
        return self.kernel.run_process(
            self.pread_proc(offset, size), name=f"pread@{offset}")

    def pwrite(self, offset: int, data: bytes) -> None:
        self.kernel.run_process(
            self.pwrite_proc(offset, data), name=f"pwrite@{offset}")

    # -- process API ----------------------------------------------------------
    def pread_proc(self, offset: int, size: int) -> Generator:
        """Read ``size`` bytes starting at ``offset``."""
        self._check_span(offset, size)
        if size == 0:
            return b""
        first = offset // self.block_size
        last = (offset + size - 1) // self.block_size
        chunks = []
        for lba in range(first, last + 1):
            chunks.append((yield from self.device.read_proc(lba)))
        blob = b"".join(chunks)
        start = offset - first * self.block_size
        return blob[start:start + size]

    def pwrite_proc(self, offset: int, data: bytes) -> Generator:
        """Write ``data`` at ``offset`` (read-modify-write at the edges)."""
        self._check_span(offset, len(data))
        if not data:
            return
        block = self.block_size
        cursor = 0
        while cursor < len(data):
            pos = offset + cursor
            lba = pos // block
            within = pos % block
            take = min(block - within, len(data) - cursor)
            if within == 0 and take == block:
                payload = data[cursor:cursor + take]
            else:
                existing = yield from self.device.read_proc(lba)
                payload = (existing[:within]
                           + data[cursor:cursor + take]
                           + existing[within + take:])
            yield from self.device.write_proc(lba, payload)
            cursor += take

    def _check_span(self, offset: int, size: int) -> None:
        if offset < 0 or size < 0:
            raise LbaError("offset and size must be non-negative")
        if offset + size > self.size_bytes:
            raise LbaError(
                f"span [{offset}, {offset + size}) beyond volume end "
                f"({self.size_bytes} bytes)")

"""Destaging snapshots to archival storage (paper §7).

"Keeping snapshots on flash for prolonged durations is not necessarily
the best use of the SSD.  Thus, schemes to destage snapshots to
archival disks are required."  This module implements that scheme:

- :class:`ArchiveTarget` — a simulated archival device (disk/object
  store): high capacity, decent sequential bandwidth, miserable
  latency, with a per-snapshot manifest and CRC verification;
- :func:`destage_snapshot` — activate a snapshot (rate-limited if
  desired), stream its blocks to the archive, then optionally delete
  it from flash so the cleaner can reclaim the space;
- :func:`restore_snapshot` — write an archived image back onto the
  active device (disaster recovery), verifying every block's CRC.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, Generator, Optional

from repro.errors import SnapshotError
from repro.sim import Kernel
from repro.sim.stats import NS_PER_MS, NS_PER_SEC

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.iosnap import IoSnapDevice


@dataclass
class ArchiveManifest:
    """What the archive knows about one stored snapshot image.

    ``parent`` names the base image of an *incremental* image: reading
    it back overlays this image's blocks (and removals) on the parent's
    resolved contents, recursively.
    """

    name: str
    block_count: int = 0
    total_bytes: int = 0
    crcs: Dict[int, int] = field(default_factory=dict)   # lba -> crc32
    parent: Optional[str] = None
    removed_lbas: tuple = ()


class ArchiveTarget:
    """A simulated archival store: streaming writes, slow random reads."""

    def __init__(self, kernel: Kernel, write_mb_per_s: float = 150.0,
                 read_mb_per_s: float = 150.0,
                 seek_ns: int = 8 * NS_PER_MS) -> None:
        if write_mb_per_s <= 0 or read_mb_per_s <= 0:
            raise ValueError("bandwidths must be positive")
        self.kernel = kernel
        self.write_ns_per_byte = NS_PER_SEC / (write_mb_per_s * 1e6)
        self.read_ns_per_byte = NS_PER_SEC / (read_mb_per_s * 1e6)
        self.seek_ns = seek_ns
        self._images: Dict[str, Dict[int, bytes]] = {}
        self._manifests: Dict[str, ArchiveManifest] = {}
        self._streaming_to: Optional[str] = None

    # -- writing -------------------------------------------------------------
    def begin_image(self, name: str,
                    parent: Optional[str] = None) -> ArchiveManifest:
        if name in self._images:
            raise SnapshotError(f"archive already holds image {name!r}")
        if parent is not None and parent not in self._images:
            raise SnapshotError(
                f"incremental base image {parent!r} not in archive")
        self._images[name] = {}
        manifest = ArchiveManifest(name=name, parent=parent)
        self._manifests[name] = manifest
        self._streaming_to = None
        return manifest

    def store_block(self, name: str, lba: int, data: bytes) -> Generator:
        """Append one block to an image (sequential: seek paid once)."""
        image = self._images.get(name)
        if image is None:
            raise SnapshotError(f"no open image {name!r}")
        if self._streaming_to != name:
            yield self.seek_ns
            self._streaming_to = name
        yield max(1, int(len(data) * self.write_ns_per_byte))
        image[lba] = bytes(data)
        manifest = self._manifests[name]
        manifest.block_count += 1
        manifest.total_bytes += len(data)
        manifest.crcs[lba] = zlib.crc32(data)

    # -- reading -------------------------------------------------------------
    def manifest(self, name: str) -> ArchiveManifest:
        manifest = self._manifests.get(name)
        if manifest is None:
            raise SnapshotError(f"archive has no image {name!r}")
        return manifest

    def fetch_block(self, name: str, lba: int) -> Generator:
        image = self._images.get(name)
        if image is None:
            raise SnapshotError(f"archive has no image {name!r}")
        if lba not in image:
            raise SnapshotError(f"image {name!r} has no block {lba}")
        self._streaming_to = None
        yield self.seek_ns
        data = image[lba]
        yield max(1, int(len(data) * self.read_ns_per_byte))
        if zlib.crc32(data) != self._manifests[name].crcs[lba]:
            raise SnapshotError(
                f"archive corruption: crc mismatch for lba {lba}")
        return data

    def fetch_image(self, name: str) -> Generator:
        """Stream a whole image back, resolving incremental chains.

        The base image is read first, then each descendant's blocks
        overlay it (and its removals delete from it) in order.
        """
        chain: list = []
        cursor: Optional[str] = name
        while cursor is not None:
            manifest = self.manifest(cursor)
            chain.append(manifest)
            cursor = manifest.parent
            if len(chain) > len(self._images):
                raise SnapshotError("incremental chain contains a cycle")
        out: Dict[int, bytes] = {}
        for manifest in reversed(chain):
            image = self._images[manifest.name]
            yield self.seek_ns
            yield max(1, int(manifest.total_bytes * self.read_ns_per_byte))
            for lba in manifest.removed_lbas:
                out.pop(lba, None)
            for lba, data in image.items():
                if zlib.crc32(data) != manifest.crcs[lba]:
                    raise SnapshotError(
                        f"archive corruption: crc mismatch for lba {lba}")
                out[lba] = data
        return out

    def images(self):
        return sorted(self._images)

    def delete_image(self, name: str) -> None:
        if name not in self._images:
            raise SnapshotError(f"archive has no image {name!r}")
        dependents = [m.name for m in self._manifests.values()
                      if m.parent == name]
        if dependents:
            raise SnapshotError(
                f"image {name!r} is the base of incremental image(s) "
                f"{dependents}; delete those first")
        del self._images[name]
        del self._manifests[name]


def destage_snapshot(ftl: "IoSnapDevice", ref, archive: ArchiveTarget,
                     limiter=None, delete_after: bool = False) -> Dict:
    """Synchronous façade for :func:`destage_snapshot_proc`."""
    return ftl.kernel.run_process(
        destage_snapshot_proc(ftl, ref, archive, limiter, delete_after),
        name="destage")


def destage_snapshot_proc(ftl: "IoSnapDevice", ref, archive: ArchiveTarget,
                          limiter=None,
                          delete_after: bool = False) -> Generator:
    """Stream one snapshot's blocks to the archive.

    Activation identifies the blocks (the paper notes checkpointed
    metadata could skip this step; with ``selective_scan`` enabled the
    scan already skips irrelevant segments).  Returns a report dict.
    """
    snap = ftl.tree.resolve(ref)
    started = ftl.kernel.now
    activated = yield from ftl.snapshot_activate_proc(snap, limiter)
    try:
        archive.begin_image(snap.name)
        blocks = 0
        for lba, _ppn in activated.map.items():
            data = yield from activated.read_proc(lba)
            yield from archive.store_block(snap.name, lba, data)
            blocks += 1
    finally:
        yield from ftl.snapshot_deactivate_proc(activated)
    if delete_after:
        yield from ftl.snapshot_delete_proc(snap)
        ftl.cleaner.maybe_kick()
    activation = ftl.snap_metrics.activation_reports[-1]
    return {
        "snapshot": snap.name,
        "blocks": blocks,
        "bytes": archive.manifest(snap.name).total_bytes,
        "duration_ns": ftl.kernel.now - started,
        "deleted_from_flash": delete_after,
        # How the identifying activation was served (full / selective /
        # delta) and how much log it actually read — repeated destages
        # of the same snapshot ride the warm-activation cache.
        "activation_mode": activation["mode"],
        "segments_skipped": activation["segments_skipped"],
        "pages_scanned": activation["pages_scanned"],
    }


def destage_incremental(ftl: "IoSnapDevice", base_name: str, target,
                        archive: ArchiveTarget, limiter=None,
                        delete_after: bool = False) -> Dict:
    """Synchronous façade for :func:`destage_incremental_proc`."""
    return ftl.kernel.run_process(
        destage_incremental_proc(ftl, base_name, target, archive, limiter,
                                 delete_after), name="destage-incr")


def destage_incremental_proc(ftl: "IoSnapDevice", base_name: str, target,
                             archive: ArchiveTarget, limiter=None,
                             delete_after: bool = False) -> Generator:
    """Archive only what changed since an already-archived base snapshot.

    ``base_name`` must name both a snapshot still on flash and an image
    already in the archive.  One log scan diffs the two snapshots'
    epoch paths (:mod:`repro.core.diff`); only changed/added blocks are
    read and streamed; removals are recorded in the manifest so
    ``fetch_image`` resolves the chain correctly.
    """
    from repro.core.diff import snapshot_diff_proc

    target_snap = ftl.tree.resolve(target)
    if base_name not in archive.images():
        raise SnapshotError(
            f"base snapshot {base_name!r} is not in the archive; run a "
            "full destage first")
    started = ftl.kernel.now
    diff = yield from snapshot_diff_proc(ftl, base_name, target_snap,
                                         limiter)
    activated = yield from ftl.snapshot_activate_proc(target_snap, limiter)
    try:
        manifest = archive.begin_image(target_snap.name, parent=base_name)
        manifest.removed_lbas = tuple(diff.removed)
        copied = 0
        for lba in diff.lbas_to_copy():
            data = yield from activated.read_proc(lba)
            yield from archive.store_block(target_snap.name, lba, data)
            copied += 1
    finally:
        yield from ftl.snapshot_deactivate_proc(activated)
    if delete_after:
        yield from ftl.snapshot_delete_proc(target_snap)
        ftl.cleaner.maybe_kick()
    activation = ftl.snap_metrics.activation_reports[-1]
    return {
        "snapshot": target_snap.name,
        "base": base_name,
        "blocks_copied": copied,
        "blocks_removed": len(diff.removed),
        "duration_ns": ftl.kernel.now - started,
        "deleted_from_flash": delete_after,
        "activation_mode": activation["mode"],
        "segments_skipped": activation["segments_skipped"],
        "pages_scanned": activation["pages_scanned"],
    }


def restore_snapshot(ftl: "IoSnapDevice", name: str,
                     archive: ArchiveTarget) -> Dict:
    """Synchronous façade for :func:`restore_snapshot_proc`."""
    return ftl.kernel.run_process(
        restore_snapshot_proc(ftl, name, archive), name="restore-archive")


def restore_snapshot_proc(ftl: "IoSnapDevice", name: str,
                          archive: ArchiveTarget) -> Generator:
    """Write an archived image back onto the active device."""
    started = ftl.kernel.now
    image = yield from archive.fetch_image(name)
    for lba, data in sorted(image.items()):
        yield from ftl.write_proc(lba, data)
    return {
        "snapshot": name,
        "blocks": len(image),
        "duration_ns": ftl.kernel.now - started,
    }

"""Epochs and the snapshot tree (paper §5.3.2, Figure 4).

Epochs divide the log into time-ordered sets: the epoch counter is
incremented on every snapshot operation, and every block written
carries its epoch in its OOB header.  Snapshots point at epochs; the
tree of epochs records lineage — snapshot creation extends the main
chain, activation forks a branch.

A snapshot's state is the fold of all packets written in the epochs on
the path from the root to its captured epoch; that path is what
:meth:`SnapshotTree.path_epochs` returns and what both activation and
crash recovery use to isolate one snapshot's data from its siblings.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Union

from repro import sanitize
from repro.errors import SnapshotError


class BranchKind(enum.Enum):
    MAIN = "main"
    ACTIVATION = "activation"


@dataclass
class Snapshot:
    """A point-in-time image: the fold of epochs up to ``epoch``."""

    snap_id: int
    name: str
    epoch: int              # the captured epoch
    created_seq: int        # log sequence number of the create note
    deleted: bool = False
    # Forward-map footprint at creation time (paper Table 3 reporting).
    map_nodes_at_create: int = 0
    map_bytes_at_create: int = 0


@dataclass
class EpochNode:
    number: int
    parent: Optional["EpochNode"]
    kind: BranchKind
    snapshot_id: Optional[int] = None   # snapshot capturing this epoch
    children: List["EpochNode"] = field(default_factory=list)


SnapshotRef = Union[int, str, Snapshot]


class SnapshotTree:
    """Registry of epochs and snapshots plus the active main epoch."""

    def __init__(self) -> None:
        root = EpochNode(number=0, parent=None, kind=BranchKind.MAIN)
        self._nodes: Dict[int, EpochNode] = {0: root}
        self._snapshots: Dict[int, Snapshot] = {}
        self._by_name: Dict[str, int] = {}
        self.active_epoch = 0
        self._next_epoch = 1
        self._next_snap_id = 1

    # -- lookups -----------------------------------------------------------
    def node(self, epoch: int) -> EpochNode:
        try:
            return self._nodes[epoch]
        except KeyError:
            raise SnapshotError(f"unknown epoch {epoch}") from None

    def resolve(self, ref: SnapshotRef) -> Snapshot:
        """Find a snapshot by id, name, or identity."""
        if isinstance(ref, Snapshot):
            ref = ref.snap_id
        if isinstance(ref, str):
            snap_id = self._by_name.get(ref)
            if snap_id is None:
                raise SnapshotError(f"no snapshot named {ref!r}")
            ref = snap_id
        snap = self._snapshots.get(ref)
        if snap is None:
            raise SnapshotError(f"no snapshot with id {ref}")
        return snap

    def snapshots(self, include_deleted: bool = False) -> List[Snapshot]:
        snaps = sorted(self._snapshots.values(), key=lambda s: s.snap_id)
        if include_deleted:
            return snaps
        return [s for s in snaps if not s.deleted]

    def live_snapshot_epochs(self) -> List[int]:
        """Epochs whose validity bitmaps must be honored by the cleaner."""
        return [s.epoch for s in self._snapshots.values() if not s.deleted]

    def path_epochs(self, epoch: int) -> List[int]:
        """Epoch numbers from the root down to ``epoch`` (inclusive)."""
        path: List[int] = []
        node: Optional[EpochNode] = self.node(epoch)
        while node is not None:
            path.append(node.number)
            node = node.parent
        path.reverse()
        return path

    def depth_of(self, ref: SnapshotRef) -> int:
        """Number of ancestor snapshots this snapshot depends on."""
        snap = self.resolve(ref)
        return sum(
            1 for epoch in self.path_epochs(snap.epoch)
            if epoch != snap.epoch and self._nodes[epoch].snapshot_id is not None
        )

    def peek_next_epoch(self) -> int:
        return self._next_epoch

    def peek_next_snap_id(self) -> int:
        return self._next_snap_id

    # -- transitions -----------------------------------------------------------
    def create_snapshot(self, name: Optional[str], created_seq: int) -> Snapshot:
        """Capture the active epoch; the main chain moves to a new epoch."""
        snap_id = self._next_snap_id
        if name is None:
            name = f"snap-{snap_id}"
        if name in self._by_name:
            raise SnapshotError(f"snapshot name {name!r} already in use")
        captured = self.active_epoch
        snap = Snapshot(snap_id=snap_id, name=name, epoch=captured,
                        created_seq=created_seq)
        self._next_snap_id += 1
        self._snapshots[snap_id] = snap
        self._by_name[name] = snap_id
        self._nodes[captured].snapshot_id = snap_id
        self.active_epoch = self._add_epoch(parent=captured,
                                            kind=BranchKind.MAIN)
        if sanitize.enabled:
            # Epoch stamps on the log are only orderable because the
            # main chain's epoch strictly advances at every capture.
            sanitize.check(
                self.active_epoch > captured,
                f"active epoch did not advance: {self.active_epoch} "
                f"after capturing {captured}")
        return snap

    def delete_snapshot(self, ref: SnapshotRef) -> Snapshot:
        snap = self.resolve(ref)
        if snap.deleted:
            raise SnapshotError(f"snapshot {snap.name!r} already deleted")
        snap.deleted = True
        return snap

    def new_activation_epoch(self, ref: SnapshotRef) -> int:
        """Fork a branch epoch off a snapshot (activation, §5.6)."""
        snap = self.resolve(ref)
        if snap.deleted:
            raise SnapshotError(f"snapshot {snap.name!r} is deleted")
        return self._add_epoch(parent=snap.epoch, kind=BranchKind.ACTIVATION)

    def _add_epoch(self, parent: int, kind: BranchKind) -> int:
        number = self._next_epoch
        self._next_epoch += 1
        node = EpochNode(number=number, parent=self._nodes[parent], kind=kind)
        self._nodes[parent].children.append(node)
        self._nodes[number] = node
        return number

    # -- recovery/checkpoint construction -------------------------------------
    def register_recovered_epoch(self, number: int, parent: int,
                                 kind: BranchKind) -> None:
        """Re-add an epoch edge learned from a note during recovery."""
        if number in self._nodes:
            raise SnapshotError(f"epoch {number} registered twice")
        node = EpochNode(number=number, parent=self._nodes[parent], kind=kind)
        self._nodes[parent].children.append(node)
        self._nodes[number] = node
        self._next_epoch = max(self._next_epoch, number + 1)

    def register_recovered_snapshot(self, snap: Snapshot) -> None:
        if snap.snap_id in self._snapshots:
            raise SnapshotError(f"snapshot id {snap.snap_id} registered twice")
        self._snapshots[snap.snap_id] = snap
        self._by_name[snap.name] = snap.snap_id
        self._nodes[snap.epoch].snapshot_id = snap.snap_id
        self._next_snap_id = max(self._next_snap_id, snap.snap_id + 1)

    def note_epoch_consumed(self, number: int) -> None:
        """Keep the epoch counter above numbers seen on the media."""
        self._next_epoch = max(self._next_epoch, number + 1)

    def render(self) -> str:
        """ASCII rendering of the epoch tree (operator tooling).

        Example::

            epoch 0 [snapshot 'base']
            ├── epoch 1 [snapshot 'daily'] (deleted)
            │   └── epoch 3 (active)
            └── epoch 2 (activation)
        """
        lines: List[str] = []

        def label(node: EpochNode) -> str:
            parts = [f"epoch {node.number}"]
            if node.snapshot_id is not None:
                snap = self._snapshots[node.snapshot_id]
                tag = f"snapshot {snap.name!r}"
                if snap.deleted:
                    tag += " (deleted)"
                parts.append(f"[{tag}]")
            if node.kind is BranchKind.ACTIVATION:
                parts.append("(activation)")
            if node.number == self.active_epoch:
                parts.append("(active)")
            return " ".join(parts)

        def walk(node: EpochNode, prefix: str, is_last: bool,
                 is_root: bool) -> None:
            if is_root:
                lines.append(label(node))
                child_prefix = ""
            else:
                connector = "└── " if is_last else "├── "
                lines.append(prefix + connector + label(node))
                child_prefix = prefix + ("    " if is_last else "│   ")
            for i, child in enumerate(node.children):
                walk(child, child_prefix, i == len(node.children) - 1,
                     is_root=False)

        walk(self._nodes[0], "", True, is_root=True)
        return "\n".join(lines)

    def dump(self) -> Dict:
        """Checkpoint image of the tree."""
        return {
            "epochs": [
                (node.number,
                 node.parent.number if node.parent is not None else None,
                 node.kind.value)
                for node in sorted(self._nodes.values(),
                                   key=lambda n: n.number)
            ],
            "snapshots": [vars(s).copy() for s in self._snapshots.values()],
            "active_epoch": self.active_epoch,
            "next_epoch": self._next_epoch,
            "next_snap_id": self._next_snap_id,
        }

    @classmethod
    def restore(cls, image: Dict) -> "SnapshotTree":
        tree = cls()
        for number, parent, kind in image["epochs"]:
            if number == 0:
                continue
            tree.register_recovered_epoch(number, parent, BranchKind(kind))
        for fields in image["snapshots"]:
            tree.register_recovered_snapshot(Snapshot(**fields))
        tree.active_epoch = image["active_epoch"]
        tree._next_epoch = image["next_epoch"]
        tree._next_snap_id = image["next_snap_id"]
        return tree

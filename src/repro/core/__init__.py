"""ioSnap: the paper's primary contribution.

Flash-optimized snapshots layered natively into the FTL — epochs, a
snapshot tree, CoW validity bitmaps, a snapshot-aware segment cleaner,
rate-limited activation, and snapshot-aware crash recovery.
"""

from repro.core.activation import ActivatedSnapshot
from repro.core.cow_bitmap import CowValidityBitmap
from repro.core.destage import (
    ArchiveManifest,
    ArchiveTarget,
    destage_incremental,
    destage_snapshot,
    restore_snapshot,
)
from repro.core.diff import (
    ChangedBlocks,
    SnapshotDiff,
    changed_blocks,
    snapshot_diff,
)
from repro.core.rollback import snapshot_rollback
from repro.core.iosnap import IoSnapConfig, IoSnapDevice, SnapshotMetrics
from repro.core.recovery import rebuild_iosnap_state
from repro.core.snaptree import (
    BranchKind,
    EpochNode,
    Snapshot,
    SnapshotTree,
)

__all__ = [
    "ActivatedSnapshot",
    "ArchiveManifest",
    "ArchiveTarget",
    "BranchKind",
    "ChangedBlocks",
    "CowValidityBitmap",
    "EpochNode",
    "IoSnapConfig",
    "IoSnapDevice",
    "Snapshot",
    "SnapshotDiff",
    "SnapshotMetrics",
    "SnapshotTree",
    "changed_blocks",
    "destage_incremental",
    "destage_snapshot",
    "rebuild_iosnap_state",
    "restore_snapshot",
    "snapshot_diff",
    "snapshot_rollback",
]

"""ioSnap: flash-optimized snapshots layered into the FTL.

:class:`IoSnapDevice` subclasses the base FTL and implements the
paper's design:

- every write is stamped with the current *epoch* (§5.3.2);
- snapshot create/delete are O(1): a synchronous note on the log plus
  an in-memory tree update — no data copying, no map duplication
  (§5.8);
- validity is tracked per epoch with CoW-shared bitmap pages (§5.4.1);
- the segment cleaner merges per-epoch bitmaps to decide liveness and
  fixes bits in every epoch that references a moved block (§5.4.3);
- activation is the deliberate slow path: a rate-limited scan of the
  log rebuilds the snapshot's forward map on demand (§5.6);
- crash recovery reconstructs the snapshot tree from notes and only
  the *active* tree's forward map (§5.5).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Generator, List, Optional, Tuple

from repro import sanitize
from repro.core.activation import ActivatedSnapshot, activate_proc
from repro.core.cow_bitmap import (
    CowValidityBitmap,
    merged_count_range,
    merged_iter_range,
)
from repro.core.epoch_index import SegmentEpochIndex, recompute_segment
from repro.core.residue import ResidueCache
from repro.core.snaptree import Snapshot, SnapshotRef, SnapshotTree
from repro.errors import SnapshotError, SummaryIndexError
from repro.ftl.log import Segment
from repro.sim.stats import Counters
from repro.ftl.packet import (
    SnapCreateNote,
    SnapDeactivateNote,
    SnapDeleteNote,
    encode_note,
)
from repro.ftl.vsl import FtlConfig, VslDevice
from repro.races import runtime as races
from repro.nand.oob import OobHeader, PageKind


@dataclass
class IoSnapConfig(FtlConfig):
    """FTL tunables plus ioSnap-specific knobs."""

    # Figure 10's toggle: pace the cleaner with the merged multi-epoch
    # estimate (True) or the active-epoch-only estimate the vanilla
    # rate policy would use (False).
    snapshot_aware_pacing: bool = True
    # §5.6 designs writable snapshots; the paper prototypes read-only
    # activation.  We implement both, defaulting to the prototype.
    writable_activations: bool = False
    # In-flight OOB reads per activation-scan burst when unthrottled
    # (a duty-cycle limiter shrinks the burst to its work quantum).
    activation_scan_batch: int = 16
    # §5.4.2: segregate cleaner output by temperature — blocks no
    # longer valid in the active epoch (snapshot-retained, i.e. cold)
    # go to a separate GC head from still-hot active data.  This
    # reduces epoch intermixing, which keeps selective scans effective
    # and lowers future merge/CoW overheads.  Off by default to match
    # the paper's prototype ("we do not delve into the policy aspect").
    gc_segregate_cold: bool = False
    # §7 future-work extension: keep a per-segment summary of which
    # epochs have packets there, letting activation skip segments with
    # nothing on the snapshot's path ("selectively scanning only those
    # segments that have data corresponding to the snapshot").  On by
    # default since the index became durable (checkpointed with CRC +
    # generation stamping and restored validation-first); set False to
    # measure the paper's prototype behavior (full scans).
    selective_scan: bool = True
    # Warm-activation cache: deactivated snapshots leave an
    # ActivationResidue behind so re-activation only rescans log
    # regions that changed since (see repro.core.residue).  Bounded by
    # entry count and accounted bytes; either bound at zero disables
    # caching.
    residue_cache_entries: int = 8
    residue_cache_bytes: int = 4 << 20
    # Snapshot-retention policy (the glusterfs "snap-max-hard-limit" /
    # "auto-delete" shape the scenario corpus exercises).  0 keeps the
    # paper's unlimited behavior.  With a limit set, creating a
    # snapshot once ``snapshot_limit`` live snapshots exist either
    # auto-deletes the oldest deletable one first (auto-delete on;
    # snapshots pinned by an open activation are never victims) or
    # refuses the create with :class:`SnapshotError` (auto-delete
    # off).  Host configuration, not media format: a device reopened
    # with a different limit simply enforces the new policy from the
    # next create on.
    snapshot_limit: int = 0
    snapshot_auto_delete: bool = False

    def __post_init__(self) -> None:
        super().__post_init__()
        if self.snapshot_limit < 0:
            raise ValueError("snapshot_limit must be >= 0 (0 = unlimited)")


@dataclass
class SnapshotMetrics:
    """ioSnap-specific counters layered over FtlMetrics."""

    creates: int = 0
    deletes: int = 0
    auto_deletes: int = 0     # retention-policy evictions (snapshot_limit)
    rejected_creates: int = 0  # creates refused at the snapshot limit
    activations: int = 0
    deactivations: int = 0
    create_latencies_ns: List[int] = field(default_factory=list)
    delete_latencies_ns: List[int] = field(default_factory=list)
    activation_reports: List[Dict[str, Any]] = field(default_factory=list)
    # One entry per snapshot_diff/changed_blocks scan: mode, sizing
    # (bytes/extents to copy), and what the header scan cost — the
    # diff-side analogue of activation_reports.
    diff_reports: List[Dict[str, Any]] = field(default_factory=list)


class IoSnapDevice(VslDevice):
    """The paper's system: an FTL with native snapshots."""

    config: IoSnapConfig
    CONFIG_CLS = IoSnapConfig

    def __init__(self, kernel, nand, config: Optional[IoSnapConfig] = None):
        super().__init__(kernel, nand, config or IoSnapConfig())
        self.snap_metrics = SnapshotMetrics()

    # ------------------------------------------------------------------
    # Snapshot API (synchronous façade)
    # ------------------------------------------------------------------
    def snapshot_create(self, name: Optional[str] = None) -> Snapshot:
        return self.kernel.run_process(self.snapshot_create_proc(name),
                                       name="snap-create")

    def snapshot_delete(self, ref: SnapshotRef) -> None:
        self.kernel.run_process(self.snapshot_delete_proc(ref),
                                name="snap-delete")

    def snapshot_activate(self, ref: SnapshotRef,
                          limiter=None) -> ActivatedSnapshot:
        return self.kernel.run_process(
            self.snapshot_activate_proc(ref, limiter), name="snap-activate")

    def snapshot_deactivate(self, activated: ActivatedSnapshot) -> None:
        self.kernel.run_process(self.snapshot_deactivate_proc(activated),
                                name="snap-deactivate")

    def snapshots(self, include_deleted: bool = False) -> List[Snapshot]:
        return self.tree.snapshots(include_deleted=include_deleted)

    def activations(self) -> List[ActivatedSnapshot]:
        return list(self._activations)

    # ------------------------------------------------------------------
    # Snapshot API (process form)
    # ------------------------------------------------------------------
    def snapshot_create_proc(self, name: Optional[str] = None) -> Generator:
        """Create a snapshot: one synchronous note, O(1) in data volume.

        The paper makes quiescing the application's job (§5.8, step 1);
        here the device enforces it — the write gate closes, in-flight
        writes drain, and only then does the epoch advance, so no write
        ever straddles the boundary.
        """
        self._require_open()
        self._check_writable()
        yield from self._enforce_snapshot_limit()
        started = self.kernel.now
        yield from self.quiesce_begin()
        try:
            snap_id = self.tree.peek_next_snap_id()
            resolved_name = name if name is not None else f"snap-{snap_id}"
            note = SnapCreateNote(snap_id=snap_id, name=resolved_name,
                                  captured_epoch=self.tree.active_epoch,
                                  new_epoch=self.tree.peek_next_epoch())
            yield from self._append_note(note, PageKind.NOTE_SNAP_CREATE)
            snap = self.tree.create_snapshot(name,
                                             created_seq=self._next_seq)
            snap.map_nodes_at_create = self.map.node_count()
            snap.map_bytes_at_create = self.map.memory_bytes()
            # The captured epoch's bitmap freezes; the active device
            # continues on a CoW child (paper Figure 5).
            captured_bitmap = self._epoch_bitmaps[snap.epoch]
            self._epoch_bitmaps[self.tree.active_epoch] = \
                captured_bitmap.fork()
        finally:
            self.quiesce_end()
        self.snap_metrics.creates += 1
        self.snap_metrics.create_latencies_ns.append(self.kernel.now - started)
        return snap

    def _enforce_snapshot_limit(self) -> Generator:
        """Apply the retention policy ahead of a snapshot create.

        Runs *before* the create's quiesce: an eviction appends a
        delete note through the normal (privileged) note path, so a
        crash between the eviction and the create recovers to one of
        the three legitimate states — nothing happened, only the
        eviction happened, or both did.  Returns the evicted names.
        """
        limit = self.config.snapshot_limit
        if not limit:
            return []
        evicted: List[str] = []
        while len(self.snapshots()) >= limit:
            if not self.config.snapshot_auto_delete:
                self.snap_metrics.rejected_creates += 1
                raise SnapshotError(
                    f"snapshot limit reached "
                    f"({len(self.snapshots())}/{limit}); delete a snapshot "
                    f"or enable snapshot_auto_delete")
            pinned = {act.snapshot.snap_id for act in self._activations}
            candidates = [s for s in sorted(self.snapshots(),
                                            key=lambda s: s.created_seq)
                          if s.snap_id not in pinned]
            if not candidates:
                self.snap_metrics.rejected_creates += 1
                raise SnapshotError(
                    f"snapshot limit reached ({len(self.snapshots())}/"
                    f"{limit}) and every snapshot is pinned by an open "
                    f"activation")
            victim = candidates[0]
            yield from self.snapshot_delete_proc(victim)
            self.snap_metrics.auto_deletes += 1
            evicted.append(victim.name)
        return evicted

    def snapshot_delete_proc(self, ref: SnapshotRef) -> Generator:
        """Delete a snapshot: a note plus tree bookkeeping; space comes
        back lazily via the segment cleaner (paper Figure 6C)."""
        self._require_open()
        started = self.kernel.now
        snap = self.tree.resolve(ref)
        if snap.deleted:
            raise SnapshotError(f"snapshot {snap.name!r} already deleted")
        if any(act.snapshot.snap_id == snap.snap_id
               for act in self._activations):
            raise SnapshotError(
                f"snapshot {snap.name!r} is activated; deactivate first")
        note = SnapDeleteNote(snap_id=snap.snap_id)
        yield from self._append_note(note, PageKind.NOTE_SNAP_DELETE)
        self.tree.delete_snapshot(snap)
        # Drop the epoch's bitmap from the live set: the cleaner's
        # merged view no longer includes it, which implicitly
        # invalidates blocks only this snapshot kept alive.
        self._epoch_bitmaps.pop(snap.epoch, None)
        # Residues for this snapshot are dead; residues whose path
        # crosses the reclaimed epoch are conservatively dropped too
        # (their winners may become cleaner fodder).
        self._residues.invalidate_snapshot(snap.snap_id)
        self._residues.invalidate_epoch(snap.epoch)
        self.snap_metrics.deletes += 1
        self.snap_metrics.delete_latencies_ns.append(self.kernel.now - started)
        self.cleaner.maybe_kick()

    def snapshot_activate_proc(self, ref: SnapshotRef,
                               limiter=None) -> Generator:
        """Activate a snapshot: rate-limited log scan + map rebuild."""
        self._require_open()
        snap = self.tree.resolve(ref)
        activated = yield from activate_proc(self, snap, limiter)
        self.snap_metrics.activations += 1
        return activated

    def snapshot_deactivate_proc(self,
                                 activated: ActivatedSnapshot) -> Generator:
        self._require_open()
        if activated not in self._activations:
            raise SnapshotError("snapshot is not activated")
        note = SnapDeactivateNote(snap_id=activated.snapshot.snap_id,
                                  epoch=activated.epoch)
        yield from self._append_note(note, PageKind.NOTE_SNAP_DEACTIVATE)
        self._activations.remove(activated)
        self._epoch_bitmaps.pop(activated.epoch, None)
        # Leave a warm-activation residue behind: the winners/trims
        # digest (kept current by cleaner fixups while activated) plus
        # the log coordinates a delta rescan resumes from.
        self._residues.put(activated.build_residue())
        activated.mark_closed()
        self.snap_metrics.deactivations += 1
        self.cleaner.maybe_kick()

    def _append_note(self, note, kind: PageKind) -> Generator:
        payload = encode_note(note)
        header = OobHeader(kind=kind, lba=0, epoch=self.tree.active_epoch,
                           seq=self._bump_seq(), length=len(payload))
        # Delete/deactivate *release* space, and they are exactly the
        # operations an administrator issues to heal a full device —
        # they may dip into the cleaner's reserve rather than deadlock
        # behind the very snapshot being removed.
        privileged = kind in (PageKind.NOTE_SNAP_DELETE,
                              PageKind.NOTE_SNAP_DEACTIVATE)
        ppn, done = yield from self.log.append(header, payload,
                                               privileged=privileged)
        self._note_registry[ppn] = note
        yield done  # notes persist the operation; wait for durability
        return ppn

    # ------------------------------------------------------------------
    # State shared with activation / recovery / cleaner
    # ------------------------------------------------------------------
    @property
    def active_bitmap(self) -> CowValidityBitmap:
        return self._epoch_bitmaps[self.tree.active_epoch]

    def live_epoch_bitmaps(self) -> List[Tuple[int, CowValidityBitmap]]:
        """(epoch, bitmap) for every epoch the cleaner must honor."""
        return sorted(self._epoch_bitmaps.items())

    def _new_bitmap(self, parent: Optional[CowValidityBitmap] = None,
                    ) -> CowValidityBitmap:
        return CowValidityBitmap(self.nand.geometry.total_pages,
                                 page_bytes=self.config.bitmap_page_bytes,
                                 parent=parent, on_cow=self._note_cow,
                                 on_mutate=self._note_bitmap_mutation)

    def _note_cow(self, kind: str) -> None:
        if kind == "write":
            self.metrics.bitmap_cow_copies += 1
            self.metrics.cow_timestamps.append(self.kernel.now)

    def _note_bitmap_mutation(self, bit: int) -> None:
        """Any epoch's validity changed at ``bit``: the merged valid
        count cached for that segment is stale."""
        self._seg_merged_valid.pop(bit // self.log.segment_pages, None)

    def _merged_valid_cache(self) -> Dict[int, int]:
        """Per-segment merged valid counts, keyed to the live epoch set.

        Epoch membership changes (snapshot create/delete/deactivate,
        recovery, checkpoint restore) swap bitmap objects in and out of
        ``_epoch_bitmaps``; bit-level changes inside a live epoch are
        caught by the ``on_mutate`` callback instead.
        """
        key = tuple((epoch, id(bitmap))
                    for epoch, bitmap in sorted(self._epoch_bitmaps.items()))
        if key != self._seg_merged_key:
            self._seg_merged_key = key
            self._seg_merged_valid.clear()
        return self._seg_merged_valid

    def bitmap_memory_bytes(self) -> int:
        """Private bitmap bytes across live epochs (paper §6.2.1)."""
        return sum(bm.owned_bytes() for bm in self._epoch_bitmaps.values())

    def info(self) -> Dict[str, Any]:
        summary = super().info()
        summary["snapshots"] = {
            "live": len(self.snapshots()),
            "total_ever": len(self.snapshots(include_deleted=True)),
            "activated": len(self._activations),
            "active_epoch": self.tree.active_epoch,
            "retention": {
                "limit": self.config.snapshot_limit,
                "auto_delete": self.config.snapshot_auto_delete,
                "auto_deletes": self.snap_metrics.auto_deletes,
                "rejected_creates": self.snap_metrics.rejected_creates,
            },
            "bitmap_memory_bytes": self.bitmap_memory_bytes(),
            "activation": {
                **self.activation_counters.as_dict(),
                "residue_cache_entries": len(self._residues),
                "residue_cache_bytes": self._residues.memory_bytes(),
            },
            "diff": self.diff_counters.as_dict(),
        }
        return summary

    # ------------------------------------------------------------------
    # FTL hook overrides
    # ------------------------------------------------------------------
    def _make_structures(self) -> None:
        self.tree = SnapshotTree()
        self._activations: List[ActivatedSnapshot] = []
        # Per-segment epoch summaries + max-seq high-water marks for
        # the selective-scan extension; checkpointed and restored
        # validation-first (see repro.core.epoch_index).
        self._epoch_index = SegmentEpochIndex()
        # Activation acceleration counters, shared between the residue
        # cache and the scan loops; surfaced via info() and perfguard.
        self.activation_counters = Counters(
            "hits", "misses", "invalidations",
            "segments_skipped", "pages_scanned", "header_batches")
        # Snapshot-diff / changed-block scan counters, kept separate
        # from the activation set so a replication send's scans cannot
        # masquerade as activation fast-path wins (or vice versa).
        self.diff_counters = Counters(
            "diffs", "segments_skipped", "pages_scanned", "header_batches")
        self._residues = ResidueCache(self.config.residue_cache_entries,
                                      self.config.residue_cache_bytes,
                                      self.activation_counters)
        self._erase_check_tick = 0
        # Merged-across-epochs valid counts per segment index, lazily
        # filled by _estimate_valid_count and invalidated by bitmap
        # mutations (see _note_bitmap_mutation / _merged_valid_cache).
        self._seg_merged_valid: Dict[int, int] = {}
        self._seg_merged_key: Tuple = ()
        self._epoch_bitmaps: Dict[int, CowValidityBitmap] = {}
        self._epoch_bitmaps[0] = self._new_bitmap()

    def _current_epoch(self) -> int:
        return self.tree.active_epoch

    def _install_mapping(self, lba: int, ppn: int) -> Generator:
        yield from self._map_fault(lba)
        bitmap = self.active_bitmap
        if races.enabled:
            races.note(self.kernel, f"ftl.map:{lba}", "w")
        old = self.map.insert(lba, ppn)
        copies = 1 if bitmap.set(ppn) else 0
        if old is not None:
            # Clearing the old block's bit touches the bitmap page that
            # described the *previous* epoch's data — this is the CoW
            # the paper's Figure 7 measures.
            copies += 1 if bitmap.clear(old) else 0
        if copies:
            yield copies * self.config.cpu.bitmap_cow_ns

    def _uninstall_mapping(self, old_ppn: int) -> Generator:
        if self.active_bitmap.clear(old_ppn):
            yield self.config.cpu.bitmap_cow_ns

    def _compute_valid(self, seg: Segment) -> Tuple[List[int], int]:
        """Merged validity across live epochs (paper Figure 6).

        One big-int OR per bitmap page unions every epoch's view; the
        *charged* virtual CPU cost still scales with pages x epochs —
        the growing merge column of Table 4 — only the wall-clock cost
        of simulating it is word-level now.
        """
        bitmaps = [bm for _epoch, bm in self.live_epoch_bitmaps()]
        valid = list(merged_iter_range(bitmaps, seg.first_ppn, seg.npages))
        pages_touched = (seg.npages + self.active_bitmap.bits_per_page - 1) \
            // self.active_bitmap.bits_per_page
        merge_cost = pages_touched * len(bitmaps) \
            * self.config.cpu.bitmap_merge_page_ns
        return valid, merge_cost

    def _estimate_valid_count(self, seg: Segment) -> int:
        if self.config.snapshot_aware_pacing:
            cache = self._merged_valid_cache()
            count = cache.get(seg.index)
            if count is None:
                bitmaps = [bm for _e, bm in self.live_epoch_bitmaps()]
                count = merged_count_range(bitmaps, seg.first_ppn, seg.npages)
                cache[seg.index] = count
            elif sanitize.enabled:
                # The cache must be invalidated on every bitmap
                # mutation (_note_bitmap_mutation); a stale hit here
                # silently skews the cleaner's pacing decisions.
                bitmaps = [bm for _e, bm in self.live_epoch_bitmaps()]
                actual = merged_count_range(bitmaps, seg.first_ppn,
                                            seg.npages)
                sanitize.check(
                    count == actual,
                    f"merged-validity cache stale for segment "
                    f"{seg.index}: cached {count}, bitmaps say {actual}")
            return count
        # Vanilla rate policy: only the active epoch's validity — an
        # underestimate whenever the segment holds snapshotted data.
        return self.active_bitmap.count_range(seg.first_ppn, seg.npages)

    def _block_still_valid(self, ppn: int) -> bool:
        return any(bitmap.test(ppn)
                   for _epoch, bitmap in self.live_epoch_bitmaps())

    def _clear_valid_everywhere(self, ppn: int,
                                lba: Optional[int] = None) -> None:
        """Strike a media casualty from *every* epoch's validity bits.

        The snapshot-aware analogue of the relocation fixups in
        :meth:`_relocate`: a lost page may be referenced by any live
        epoch, by open activations, and by cached residues — all of
        them must stop pointing at it, or later folds would count data
        that can never be read again.
        """
        active_epoch = self.tree.active_epoch
        for epoch, bitmap in self.live_epoch_bitmaps():
            if not bitmap.test(ppn):
                continue
            if epoch == active_epoch:
                bitmap.clear(ppn)
            else:
                bitmap.clear_privileged(ppn)
        for activated in self._activations:
            activated.on_block_lost(ppn, lba)
        self._residues.on_block_lost(lba, ppn)

    def _relocate(self, old_ppn: int, new_ppn: int,
                  header: OobHeader) -> Generator:
        """Fix every epoch that references a moved block (§5.4.3):
        "in the worst case, every valid epoch may refer to this block"."""
        yield from self._map_fault(header.lba)
        active_epoch = self.tree.active_epoch
        # Decide which epochs reference the block BEFORE mutating any
        # bitmap: epochs share pages through CoW, so fixing a parent's
        # page changes what a child that never copied it reads.
        referencing = [(epoch, bitmap)
                       for epoch, bitmap in self.live_epoch_bitmaps()
                       if bitmap.test(old_ppn)]
        adjustments = 0
        for epoch, bitmap in referencing:
            adjustments += 1
            if epoch == active_epoch:
                if races.enabled:
                    races.note(self.kernel, f"ftl.map:{header.lba}", "r")
                if self.map.get(header.lba) == old_ppn:
                    if races.enabled:
                        races.note(self.kernel, f"ftl.map:{header.lba}", "w")
                    self.map.insert(header.lba, new_ppn)
                    bitmap.clear(old_ppn)
                    bitmap.set(new_ppn)
                else:
                    # Overwritten while the copy was in flight.
                    bitmap.clear(old_ppn)
            else:
                bitmap.clear_privileged(old_ppn)
                bitmap.set_privileged(new_ppn)
        for activated in self._activations:
            activated.on_block_moved(header.lba, old_ppn, new_ppn)
        # Cached residues follow moves the same way live activations
        # do, so a warm re-activation never chases erased media.
        self._residues.on_block_moved(header.lba, old_ppn, new_ppn)
        self.record_move(old_ppn, new_ppn, header)
        if adjustments:
            yield adjustments * self.config.cpu.bitmap_adjust_ns

    @property
    def _segment_epochs(self) -> Dict[int, set]:
        """Compatibility view of the index's per-segment epoch sets."""
        return self._epoch_index.epochs

    def _on_packet_appended(self, ppn: int, header: OobHeader) -> None:
        if header.kind in (PageKind.DATA, PageKind.NOTE_TRIM):
            index = self.log.segment_of(ppn).index
            self._epoch_index.note_packet(index, header.epoch, header.seq)

    def _gc_head_for(self, old_ppn: int, header: OobHeader) -> str:
        if not self.config.gc_segregate_cold:
            return "gc"
        if header.kind is not PageKind.DATA:
            return "gc"
        # Cold = retained only by snapshots (invalid in the active
        # epoch); hot = still live on the active device.
        if self.active_bitmap.test(old_ppn):
            return "gc-hot"
        return "gc-cold"

    def _before_segment_erase(self, seg: Segment) -> None:
        super()._before_segment_erase(seg)
        if not sanitize.enabled:
            return
        # Deterministic sampling (1 in 4 erases, counter-based — sim
        # layers must not consult wall clocks or global RNG): recompute
        # the doomed segment's summary from its OOB headers and audit
        # the index entry we are about to drop.  Any drift here means
        # selective scans were silently skipping live path segments.
        self._erase_check_tick += 1
        if (self._erase_check_tick - 1) % 4:
            return
        epochs, max_seq = recompute_segment(self.nand.array, seg)
        stored = set(self._epoch_index.epochs.get(seg.index, ()))
        sanitize.check(
            stored == epochs,
            f"segment {seg.index} epoch summary drifted before erase: "
            f"index {sorted(stored)}, media {sorted(epochs)}")
        sanitize.check(
            self._epoch_index.high_water(seg.index) == max_seq,
            f"segment {seg.index} high-water mark drifted before erase: "
            f"index {self._epoch_index.high_water(seg.index)}, "
            f"media {max_seq}")

    def _on_segment_erased(self, seg: Segment) -> None:
        super()._on_segment_erased(seg)
        self._epoch_index.drop_segment(seg.index)
        self._residues.on_segment_erased(seg.index)

    def segment_epoch_summary(self, seg: Segment) -> frozenset:
        """Epochs with DATA/TRIM packets in ``seg`` (selective scan)."""
        return self._epoch_index.summary(seg.index)

    def segment_intersects_epochs(self, seg: Segment, epochs) -> bool:
        """Allocation-free ``segment_epoch_summary(seg) & epochs`` test.

        The per-segment question every selective scan asks; scan loops
        call it once per allocated segment, so it goes through the
        index's :meth:`~repro.core.epoch_index.SegmentEpochIndex.
        intersects` fast path instead of materializing a frozenset.
        """
        return self._epoch_index.intersects(seg.index, epochs)

    def _note_is_live(self, ppn: int, header: OobHeader) -> bool:
        """Create/delete notes are kept forever: deleted snapshots'
        epochs can still be ancestors of live data, and recovery needs
        the full main-chain epoch lineage.  Activate/deactivate notes
        die with the crash-ephemeral activations they describe."""
        del ppn
        return header.kind in (PageKind.NOTE_TRIM,
                               PageKind.NOTE_SNAP_CREATE,
                               PageKind.NOTE_SNAP_DELETE)

    def _rebuild_state(self, packets: List[Any]) -> Generator:
        from repro.core.recovery import rebuild_iosnap_state

        yield from rebuild_iosnap_state(self, packets)

    def _dump_extra(self, generation: int) -> Dict[str, Any]:
        return {
            "tree": self.tree.dump(),
            "epoch_bitmaps": {
                epoch: bitmap.materialize()
                for epoch, bitmap in self._epoch_bitmaps.items()
            },
            "epoch_index": self._epoch_index.dump(self.log, generation),
        }

    def _load_extra(self, extra: Dict[str, Any],
                    generation: Optional[int]) -> None:
        self.tree = SnapshotTree.restore(extra["tree"])
        # Durable selective-scan index: validation-first restore, with
        # the pre-v3 full-media sweep as the fallback.  The restore
        # cross-checks the image against the log bookkeeping adopted
        # just before this hook runs; on the stale-generation fallback
        # path the log is still pristine, the image fails validation,
        # and the subsequent log replay rebuilds the index wholesale.
        index: Optional[SegmentEpochIndex] = None
        image = extra.get("epoch_index")
        if image is not None:
            try:
                index = SegmentEpochIndex.restore(image, self.log, generation)
            except SummaryIndexError:
                index = None
        if index is None:
            index = SegmentEpochIndex.rebuild_from_media(self.nand.array,
                                                         self.log)
        self._epoch_index = index
        self._epoch_bitmaps = {}
        for epoch, pages in extra["epoch_bitmaps"].items():
            bitmap = CowValidityBitmap.from_pages(
                self.nand.geometry.total_pages,
                self.config.bitmap_page_bytes, pages, on_cow=self._note_cow,
                on_mutate=self._note_bitmap_mutation)
            if epoch != self.tree.active_epoch:
                bitmap.freeze()
            self._epoch_bitmaps[epoch] = bitmap
        # Checkpoint restore flattens CoW chains: correctness is
        # preserved, page sharing is rebuilt from the next snapshot on.

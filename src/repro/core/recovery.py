"""Snapshot-aware crash recovery (paper §5.5).

Reconstruction happens in two phases, exactly as the paper describes:

1. *Identify the snapshots and build the snapshot tree.*  Snapshot
   create/delete notes (replayed in log-sequence order) rebuild the
   epoch lineage and the set of live snapshots.  The active epoch is
   the ``new_epoch`` of the latest create note.

2. *Selectively process translations.*  Only packets whose epoch lies
   on the active tree's ancestor path contribute to the rebuilt
   forward map ("we only reconstruct the active tree and do not build
   trees corresponding to the snapshots").  Per-epoch validity bitmaps
   are rebuilt root-to-leaf: each live epoch's bitmap forks its nearest
   live ancestor's and applies only the delta — re-creating the CoW
   sharing structure rather than materializing full copies.

Activation branches do not survive a crash: activated devices are gone
with host memory, so their epochs are treated as deactivated and any
blocks written there (writable-activation extension) become garbage.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, Generator, List, Tuple

from repro.core.epoch_index import SegmentEpochIndex
from repro.core.snaptree import BranchKind, Snapshot, SnapshotTree
from repro.errors import SnapshotError
from repro.ftl.btree import BPlusTree
from repro.ftl.packet import (
    SnapActivateNote,
    SnapCreateNote,
    SnapDeactivateNote,
    SnapDeleteNote,
)
from repro.ftl.recovery import ScannedPacket
from repro.nand.oob import PageKind

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.iosnap import IoSnapDevice


def rebuild_iosnap_state(ftl: "IoSnapDevice",
                         packets: List[ScannedPacket]) -> Generator:
    """Rebuild tree, forward map, and per-epoch bitmaps from a log scan."""
    tree = _rebuild_tree(packets)
    ftl.tree = tree
    ftl._activations = []

    # Rebuild the selective-scan index (per-segment epoch summaries +
    # max-seq high-water marks) from the scanned packets — the same
    # information the durable checkpointed index carries, rebuilt from
    # first principles because a crash invalidates the checkpoint.
    epoch_index = SegmentEpochIndex()
    for packet in packets:
        if packet.header.kind in (PageKind.DATA, PageKind.NOTE_TRIM):
            index = ftl.log.segment_of(packet.ppn).index
            epoch_index.note_packet(index, packet.header.epoch,
                                    packet.header.seq)
    ftl._epoch_index = epoch_index

    chain = tree.path_epochs(tree.active_epoch)
    by_epoch = _group_chain_packets(packets, frozenset(chain))

    live_epochs = set(tree.live_snapshot_epochs())
    live_epochs.add(tree.active_epoch)

    state: Dict[int, Tuple[int, int]] = {}   # lba -> (seq, ppn)
    changed: set = set()
    last_live_state: Dict[int, Tuple[int, int]] = {}
    last_live_bitmap = None
    bitmaps = {}
    diff_ops = 0

    for epoch in chain:
        for seq, kind, lba, ppn in by_epoch.get(epoch, ()):
            current = state.get(lba)
            if kind is PageKind.DATA:
                # ">=" so the later log position wins among identical
                # cleaner-made duplicates (sort is stable in scan order).
                if current is None or seq >= current[0]:
                    state[lba] = (seq, ppn)
                    changed.add(lba)
            else:  # trim
                if current is not None and current[0] < seq:
                    del state[lba]
                    changed.add(lba)
        if epoch not in live_epochs:
            continue
        # Build this epoch's bitmap as a CoW child of the nearest live
        # ancestor, touching only the bits that changed in between.
        if last_live_bitmap is None:
            bitmap = ftl._new_bitmap()
        else:
            bitmap = last_live_bitmap.fork()
        for lba in changed:
            old = last_live_state.get(lba)
            new = state.get(lba)
            if old == new:
                continue
            if old is not None:
                bitmap.clear(old[1])
                diff_ops += 1
            if new is not None:
                bitmap.set(new[1])
                diff_ops += 1
        bitmaps[epoch] = bitmap
        last_live_bitmap = bitmap
        last_live_state = dict(state)
        changed = set()

    ftl._epoch_bitmaps = bitmaps
    items = sorted((lba, ppn) for lba, (_seq, ppn) in state.items())
    if ftl.map_is_cached:
        # Replay through the bounded cache (flash-resident mode): the
        # log's segment bookkeeping was adopted before this hook ran,
        # so the cache's writeback appends land on live heads.
        yield from ftl.map.rebuild_proc(items)
    else:
        ftl.map = BPlusTree.bulk_load(items, order=ftl.config.map_order)
    _assert_no_activation_residue(ftl)
    cost = (diff_ops * ftl.config.cpu.bitmap_adjust_ns
            + len(items) * ftl.config.cpu.map_bulk_insert_ns)
    if cost:
        yield cost


def _assert_no_activation_residue(ftl: "IoSnapDevice") -> None:
    """Enforce §5.5's "activation branches do not survive a crash".

    The rebuild above only walks the main chain, so this holds by
    construction — but recovery is exactly the code the torture rig
    exists to distrust, so make the invariant explicit (fsck checks
    the same property as S6 on every audit).
    """
    if ftl._activations:
        raise SnapshotError(
            f"recovery leaked {len(ftl._activations)} open activation(s)")
    for epoch in ftl._epoch_bitmaps:
        if ftl.tree.node(epoch).kind is BranchKind.ACTIVATION:
            raise SnapshotError(
                f"recovery leaked a bitmap for activation epoch {epoch}")


def _rebuild_tree(packets: List[ScannedPacket]) -> SnapshotTree:
    """Phase 1: snapshot tree from notes, in log-sequence order."""
    tree = SnapshotTree()
    notes = sorted((p for p in packets if p.note is not None),
                   key=lambda p: p.header.seq)
    active_epoch = 0
    seen_seqs: set = set()
    for packet in notes:
        # The cleaner copy-forwards notes verbatim (same header/seq);
        # until it erases the source segment both copies are on media,
        # so a crash between copy and erase replays the note twice.
        if packet.header.seq in seen_seqs:
            continue
        seen_seqs.add(packet.header.seq)
        note = packet.note
        if isinstance(note, SnapCreateNote):
            tree.register_recovered_epoch(note.new_epoch,
                                          parent=note.captured_epoch,
                                          kind=BranchKind.MAIN)
            tree.register_recovered_snapshot(Snapshot(
                snap_id=note.snap_id, name=note.name,
                epoch=note.captured_epoch,
                created_seq=packet.header.seq))
            active_epoch = note.new_epoch
        elif isinstance(note, SnapDeleteNote):
            try:
                tree.resolve(note.snap_id).deleted = True
            except SnapshotError:
                # A delete note can outlive its create note only if the
                # snapshot was already fully reclaimed; nothing to do.
                pass
        elif isinstance(note, SnapActivateNote):
            tree.note_epoch_consumed(note.new_epoch)
        elif isinstance(note, SnapDeactivateNote):
            tree.note_epoch_consumed(note.epoch)
        # Trim notes are folded with data packets, not here.
    tree.active_epoch = active_epoch
    # Epochs seen only in data headers (dead activation branches) must
    # still never be reused while their packets remain on media.
    for packet in packets:
        tree.note_epoch_consumed(packet.header.epoch)
    return tree


def _group_chain_packets(packets: List[ScannedPacket],
                         chain: frozenset) -> Dict[int, List[Tuple]]:
    """Phase 2 input: (seq, kind, lba, ppn) per chain epoch, seq-sorted."""
    by_epoch: Dict[int, List[Tuple]] = {}
    for packet in packets:
        header = packet.header
        if header.epoch not in chain:
            continue
        if header.kind is PageKind.DATA:
            entry = (header.seq, PageKind.DATA, header.lba, packet.ppn)
        elif header.kind is PageKind.NOTE_TRIM:
            entry = (header.seq, PageKind.NOTE_TRIM, header.lba, None)
        else:
            continue
        by_epoch.setdefault(header.epoch, []).append(entry)
    for entries in by_epoch.values():
        entries.sort(key=lambda e: e[0])
    return by_epoch

"""Copy-on-Write validity bitmaps, one per epoch (paper §5.4.1, Fig. 5).

A naive design would copy the whole validity bitmap at snapshot
creation (512 MB per snapshot for the paper's 2 TB / 512 B device).
ioSnap instead shares bitmap *pages* between epochs: at snapshot
creation the active bitmap is frozen and becomes the snapshot's; the
active device continues on a CoW child that copies individual pages
only when it first modifies them.

Mutation rules:

- a *frozen* bitmap (a snapshot's) rejects :meth:`set`/:meth:`clear`;
- the segment cleaner may still fix bits in frozen bitmaps when it
  moves blocks ("a snapshot's validity bitmap is never modified unless
  the segment cleaner moves blocks") via the ``*_privileged`` methods;
- every first-touch of a shared page copies it into the mutating
  epoch's private set and reports the copy through ``on_cow`` — that
  stream of events is what the paper's Figure 7(b) plots.

Pages are stored as little-endian big-ints (one word per bitmap page,
same layout as :mod:`repro.ftl.validity`), so a CoW "copy" is just
binding the parent's immutable int, counting is a masked
``bit_count()``, and the cleaner's cross-epoch merge is a single OR per
page (:func:`merged_count_range` / :func:`merged_iter_range`).

``on_mutate`` (if given) is invoked with the bit index on every
mutation, including privileged ones, and is inherited across
:meth:`fork`; the device uses it to invalidate cached per-segment
valid counts.
"""

from __future__ import annotations

from typing import Callable, Dict, Iterator, List, Optional, Sequence, Tuple

from repro import sanitize
from repro.errors import AddressError, SnapshotError
from repro.ftl.validity import (
    PERF_COUNTERS,
    _mask_word,
    iter_word_bits,
    merge_words,
)


class CowValidityBitmap:
    """One epoch's view of block validity, CoW-shared with its parent."""

    def __init__(self, total_bits: int, page_bytes: int = 512,
                 parent: Optional["CowValidityBitmap"] = None,
                 on_cow: Optional[Callable[[str], None]] = None,
                 on_mutate: Optional[Callable[[int], None]] = None) -> None:
        if total_bits <= 0 or page_bytes <= 0:
            raise ValueError("total_bits and page_bytes must be positive")
        if parent is not None and (parent.total_bits != total_bits
                                   or parent.page_bytes != page_bytes):
            raise ValueError("parent bitmap shape mismatch")
        self.total_bits = total_bits
        self.page_bytes = page_bytes
        self.bits_per_page = page_bytes * 8
        self.parent = parent
        self.frozen = False
        self.cow_copies = 0
        self._on_cow = on_cow
        self._on_mutate = on_mutate
        self._own: Dict[int, int] = {}

    # -- lineage ---------------------------------------------------------
    def fork(self, on_cow: Optional[Callable[[str], None]] = None,
             ) -> "CowValidityBitmap":
        """Freeze this bitmap and return a mutable CoW child.

        This is exactly the snapshot-create transition: the frozen self
        becomes the snapshot's bitmap, the child is inherited by the
        active device.
        """
        self.freeze()
        return CowValidityBitmap(self.total_bits, self.page_bytes,
                                 parent=self, on_cow=on_cow or self._on_cow,
                                 on_mutate=self._on_mutate)

    def freeze(self) -> None:
        self.frozen = True

    def chain_depth(self) -> int:
        depth = 1
        node = self.parent
        while node is not None:
            depth += 1
            node = node.parent
        return depth

    # -- addressing ---------------------------------------------------------
    def _locate(self, bit: int) -> Tuple[int, int]:
        if not 0 <= bit < self.total_bits:
            raise AddressError(f"bit {bit} out of range [0, {self.total_bits})")
        return divmod(bit, self.bits_per_page)

    def _resolve(self, page_idx: int) -> Optional[int]:
        """The page's effective word, walking the parent chain."""
        node: Optional[CowValidityBitmap] = self
        while node is not None:
            word = node._own.get(page_idx)
            if word is not None:
                return word
            node = node.parent
        return None

    def resolve_word(self, page_idx: int) -> int:
        """Effective page word through the CoW chain (0 if absent)."""
        word = self._resolve(page_idx)
        return word if word is not None else 0

    def owns_page(self, page_idx: int) -> bool:
        return page_idx in self._own

    def owned_page_count(self) -> int:
        """Private (copied or fresh) pages — the epoch's memory overhead."""
        return len(self._own)

    def owned_bytes(self) -> int:
        return len(self._own) * self.page_bytes

    # -- reads -------------------------------------------------------------
    def test(self, bit: int) -> bool:
        page_idx, offset = self._locate(bit)
        word = self._resolve(page_idx)
        return bool(word is not None and word >> offset & 1)

    def count(self) -> int:
        PERF_COUNTERS["word_count"] += 1
        total = 0
        for page_idx in range(self._page_count()):
            word = self._resolve(page_idx)
            if word:
                total += word.bit_count()
        return total

    def _page_count(self) -> int:
        return (self.total_bits + self.bits_per_page - 1) // self.bits_per_page

    @property
    def page_count(self) -> int:
        """Number of bitmap pages covering ``total_bits``."""
        return self._page_count()

    def _check_range(self, start: int, length: int) -> None:
        if length < 0 or start < 0 or start + length > self.total_bits:
            raise AddressError(
                f"range [{start}, {start + length}) out of bounds")

    def count_range(self, start: int, length: int) -> int:
        self._check_range(start, length)
        if length == 0:
            return 0
        PERF_COUNTERS["word_count"] += 1
        end = start + length
        bpp = self.bits_per_page
        total = 0
        for page_idx in range(start // bpp, (end - 1) // bpp + 1):
            word = self._resolve(page_idx)
            if not word:
                continue
            total += _mask_word(word, page_idx * bpp, start, end,
                                bpp).bit_count()
        return total

    def iter_set_in_range(self, start: int, length: int) -> Iterator[int]:
        """Set bits in [start, start + length), ascending."""
        self._check_range(start, length)
        if length == 0:
            return
        PERF_COUNTERS["word_iter"] += 1
        end = start + length
        bpp = self.bits_per_page
        for page_idx in range(start // bpp, (end - 1) // bpp + 1):
            word = self._resolve(page_idx)
            if not word:
                continue
            base = page_idx * bpp
            yield from iter_word_bits(
                _mask_word(word, base, start, end, bpp), base)

    # -- mutation --------------------------------------------------------------
    def set(self, bit: int) -> bool:
        """Set a bit; returns True if a CoW page copy happened."""
        return self._mutate(bit, value=True, privileged=False)

    def clear(self, bit: int) -> bool:
        return self._mutate(bit, value=False, privileged=False)

    def set_privileged(self, bit: int) -> bool:
        """Cleaner-only mutation, allowed even on frozen bitmaps."""
        return self._mutate(bit, value=True, privileged=True)

    def clear_privileged(self, bit: int) -> bool:
        return self._mutate(bit, value=False, privileged=True)

    def _mutate(self, bit: int, value: bool, privileged: bool) -> bool:
        if self.frozen and not privileged:
            raise SnapshotError(
                "bitmap is frozen (belongs to a snapshot); only the "
                "segment cleaner may adjust it")
        page_idx, offset = self._locate(bit)
        copied = False
        word = self._own.get(page_idx)
        if word is None:
            inherited = None
            if self.parent is not None:
                inherited = self.parent._resolve(page_idx)
            if inherited is not None:
                word = inherited
                copied = True
                self.cow_copies += 1
                if self._on_cow is not None:
                    self._on_cow("cleaner" if privileged else "write")
            else:
                if not value:
                    return False  # clearing a bit in an all-zero page
                word = 0
        if value:
            word |= 1 << offset
        else:
            word &= ~(1 << offset)
        self._own[page_idx] = word
        if sanitize.enabled:
            # A page word must stay within its page width (a word that
            # grows past it would double-count in masked popcounts),
            # every CoW copy must leave the copied page privately
            # owned, and the mutation must be observable through the
            # chain resolve path.
            sanitize.check(word >> self.bits_per_page == 0,
                           f"bitmap page {page_idx} word overflows "
                           f"{self.bits_per_page}-bit page width")
            sanitize.check(self.cow_copies <= len(self._own),
                           f"cow_copies={self.cow_copies} exceeds "
                           f"{len(self._own)} privately-owned pages")
            sanitize.check(self.test(bit) == value,
                           f"mutation of bit {bit} not visible through "
                           f"the CoW resolve path")
        if self._on_mutate is not None:
            self._on_mutate(bit)
        return copied

    # -- checkpoint support -------------------------------------------------
    def materialize(self) -> Dict[int, bytes]:
        """Fully-resolved page contents (chain flattened)."""
        nbytes = self.page_bytes
        out: Dict[int, bytes] = {}
        for page_idx in range(self._page_count()):
            word = self._resolve(page_idx)
            if word:
                out[page_idx] = word.to_bytes(nbytes, "little")
        return out

    @classmethod
    def from_pages(cls, total_bits: int, page_bytes: int,
                   pages: Dict[int, bytes],
                   on_cow: Optional[Callable[[str], None]] = None,
                   on_mutate: Optional[Callable[[int], None]] = None,
                   ) -> "CowValidityBitmap":
        """Rebuild a standalone (chain-less) bitmap from materialized pages."""
        bitmap = cls(total_bits, page_bytes, on_cow=on_cow,
                     on_mutate=on_mutate)
        bitmap._own = {idx: int.from_bytes(data, "little")
                       for idx, data in pages.items()}
        if sanitize.enabled:
            for idx, word in bitmap._own.items():
                sanitize.check(
                    0 <= idx < bitmap.page_count,
                    f"materialized page index {idx} out of range")
                sanitize.check(
                    word >> bitmap.bits_per_page == 0,
                    f"materialized page {idx} overflows page width")
        return bitmap


# ---------------------------------------------------------------------------
# Cross-epoch merged views (the cleaner's Figure 6 operation)
# ---------------------------------------------------------------------------
def _merged_words(bitmaps: Sequence[CowValidityBitmap], start: int,
                  end: int) -> Iterator[Tuple[int, int]]:
    """(page_base, merged masked word) per bitmap page over [start, end)."""
    first = bitmaps[0]
    bpp = first.bits_per_page
    for page_idx in range(start // bpp, (end - 1) // bpp + 1):
        merged = merge_words([bm.resolve_word(page_idx) for bm in bitmaps])
        if not merged:
            continue
        base = page_idx * bpp
        yield base, _mask_word(merged, base, start, end, bpp)


def merged_count_range(bitmaps: Sequence[CowValidityBitmap], start: int,
                       length: int) -> int:
    """Popcount of the union of several epochs' bitmaps over a range."""
    if not bitmaps or length <= 0:
        return 0
    bitmaps[0]._check_range(start, length)
    PERF_COUNTERS["word_count"] += 1
    return sum(word.bit_count()
               for _base, word in _merged_words(bitmaps, start, start + length))


def merged_iter_range(bitmaps: Sequence[CowValidityBitmap], start: int,
                      length: int) -> Iterator[int]:
    """Ascending set-bit indices of the union of several epochs' bitmaps."""
    if not bitmaps or length <= 0:
        return
    bitmaps[0]._check_range(start, length)
    PERF_COUNTERS["word_iter"] += 1
    for base, word in _merged_words(bitmaps, start, start + length):
        yield from iter_word_bits(word, base)

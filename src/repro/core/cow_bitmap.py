"""Copy-on-Write validity bitmaps, one per epoch (paper §5.4.1, Fig. 5).

A naive design would copy the whole validity bitmap at snapshot
creation (512 MB per snapshot for the paper's 2 TB / 512 B device).
ioSnap instead shares bitmap *pages* between epochs: at snapshot
creation the active bitmap is frozen and becomes the snapshot's; the
active device continues on a CoW child that copies individual pages
only when it first modifies them.

Mutation rules:

- a *frozen* bitmap (a snapshot's) rejects :meth:`set`/:meth:`clear`;
- the segment cleaner may still fix bits in frozen bitmaps when it
  moves blocks ("a snapshot's validity bitmap is never modified unless
  the segment cleaner moves blocks") via the ``*_privileged`` methods;
- every first-touch of a shared page copies it into the mutating
  epoch's private set and reports the copy through ``on_cow`` — that
  stream of events is what the paper's Figure 7(b) plots.
"""

from __future__ import annotations

from typing import Callable, Dict, Iterator, Optional, Tuple

from repro.errors import AddressError, SnapshotError
from repro.ftl.validity import popcount


class CowValidityBitmap:
    """One epoch's view of block validity, CoW-shared with its parent."""

    def __init__(self, total_bits: int, page_bytes: int = 512,
                 parent: Optional["CowValidityBitmap"] = None,
                 on_cow: Optional[Callable[[str], None]] = None) -> None:
        if total_bits <= 0 or page_bytes <= 0:
            raise ValueError("total_bits and page_bytes must be positive")
        if parent is not None and (parent.total_bits != total_bits
                                   or parent.page_bytes != page_bytes):
            raise ValueError("parent bitmap shape mismatch")
        self.total_bits = total_bits
        self.page_bytes = page_bytes
        self.bits_per_page = page_bytes * 8
        self.parent = parent
        self.frozen = False
        self.cow_copies = 0
        self._on_cow = on_cow
        self._own: Dict[int, bytearray] = {}

    # -- lineage ---------------------------------------------------------
    def fork(self, on_cow: Optional[Callable[[str], None]] = None,
             ) -> "CowValidityBitmap":
        """Freeze this bitmap and return a mutable CoW child.

        This is exactly the snapshot-create transition: the frozen self
        becomes the snapshot's bitmap, the child is inherited by the
        active device.
        """
        self.freeze()
        return CowValidityBitmap(self.total_bits, self.page_bytes,
                                 parent=self, on_cow=on_cow or self._on_cow)

    def freeze(self) -> None:
        self.frozen = True

    def chain_depth(self) -> int:
        depth = 1
        node = self.parent
        while node is not None:
            depth += 1
            node = node.parent
        return depth

    # -- addressing ---------------------------------------------------------
    def _locate(self, bit: int) -> Tuple[int, int, int]:
        if not 0 <= bit < self.total_bits:
            raise AddressError(f"bit {bit} out of range [0, {self.total_bits})")
        page_idx, offset = divmod(bit, self.bits_per_page)
        return page_idx, offset >> 3, offset & 7

    def _resolve(self, page_idx: int) -> Optional[bytes]:
        """The page's effective contents, walking the parent chain."""
        node: Optional[CowValidityBitmap] = self
        while node is not None:
            page = node._own.get(page_idx)
            if page is not None:
                return page
            node = node.parent
        return None

    def owns_page(self, page_idx: int) -> bool:
        return page_idx in self._own

    def owned_page_count(self) -> int:
        """Private (copied or fresh) pages — the epoch's memory overhead."""
        return len(self._own)

    def owned_bytes(self) -> int:
        return len(self._own) * self.page_bytes

    # -- reads -------------------------------------------------------------
    def test(self, bit: int) -> bool:
        page_idx, byte, shift = self._locate(bit)
        page = self._resolve(page_idx)
        return bool(page is not None and page[byte] & (1 << shift))

    def count(self) -> int:
        total = 0
        page_count = (self.total_bits + self.bits_per_page - 1) \
            // self.bits_per_page
        for page_idx in range(page_count):
            page = self._resolve(page_idx)
            if page is not None:
                total += popcount(page)
        return total

    def count_range(self, start: int, length: int) -> int:
        return sum(1 for _ in self.iter_set_in_range(start, length))

    def iter_set_in_range(self, start: int, length: int) -> Iterator[int]:
        """Set bits in [start, start + length), ascending."""
        if length < 0 or start < 0 or start + length > self.total_bits:
            raise AddressError(
                f"range [{start}, {start + length}) out of bounds")
        end = start + length
        bit = start
        while bit < end:
            page_idx = bit // self.bits_per_page
            page_end = min(end, (page_idx + 1) * self.bits_per_page)
            page = self._resolve(page_idx)
            if page is not None:
                for b in range(bit, page_end):
                    offset = b % self.bits_per_page
                    if page[offset >> 3] & (1 << (offset & 7)):
                        yield b
            bit = page_end

    # -- mutation --------------------------------------------------------------
    def set(self, bit: int) -> bool:
        """Set a bit; returns True if a CoW page copy happened."""
        return self._mutate(bit, value=True, privileged=False)

    def clear(self, bit: int) -> bool:
        return self._mutate(bit, value=False, privileged=False)

    def set_privileged(self, bit: int) -> bool:
        """Cleaner-only mutation, allowed even on frozen bitmaps."""
        return self._mutate(bit, value=True, privileged=True)

    def clear_privileged(self, bit: int) -> bool:
        return self._mutate(bit, value=False, privileged=True)

    def _mutate(self, bit: int, value: bool, privileged: bool) -> bool:
        if self.frozen and not privileged:
            raise SnapshotError(
                "bitmap is frozen (belongs to a snapshot); only the "
                "segment cleaner may adjust it")
        page_idx, byte, shift = self._locate(bit)
        copied = False
        page = self._own.get(page_idx)
        if page is None:
            inherited = None
            if self.parent is not None:
                inherited = self.parent._resolve(page_idx)
            if inherited is not None:
                page = bytearray(inherited)
                copied = True
                self.cow_copies += 1
                if self._on_cow is not None:
                    self._on_cow("cleaner" if privileged else "write")
            else:
                if not value:
                    return False  # clearing a bit in an all-zero page
                page = bytearray(self.page_bytes)
            self._own[page_idx] = page
        if value:
            page[byte] |= 1 << shift
        else:
            page[byte] &= ~(1 << shift) & 0xFF
        return copied

    # -- checkpoint support -------------------------------------------------
    def materialize(self) -> Dict[int, bytes]:
        """Fully-resolved page contents (chain flattened)."""
        page_count = (self.total_bits + self.bits_per_page - 1) \
            // self.bits_per_page
        out: Dict[int, bytes] = {}
        for page_idx in range(page_count):
            page = self._resolve(page_idx)
            if page is not None and any(page):
                out[page_idx] = bytes(page)
        return out

    @classmethod
    def from_pages(cls, total_bits: int, page_bytes: int,
                   pages: Dict[int, bytes],
                   on_cow: Optional[Callable[[str], None]] = None,
                   ) -> "CowValidityBitmap":
        """Rebuild a standalone (chain-less) bitmap from materialized pages."""
        bitmap = cls(total_bits, page_bytes, on_cow=on_cow)
        bitmap._own = {idx: bytearray(data) for idx, data in pages.items()}
        return bitmap

"""Snapshot differencing: which blocks changed between two snapshots.

The log *is* a change record: every packet carries (lba, epoch, seq),
so the difference between two snapshots on the same lineage falls out
of one header scan folding both epoch paths — no block contents are
read and no forward maps need to exist.  This is the enabler for
incremental backup (see :mod:`repro.core.destage`): after a full
destage of snapshot A, only ``diff(A, B)`` blocks need to leave the
device to archive snapshot B.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, Generator, List, Optional, Tuple

from repro.core.activation import _read_batch, _scan_batch_size
from repro.ftl.ratelimit import NullLimiter
from repro.nand.oob import PageKind

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.iosnap import IoSnapDevice


@dataclass
class SnapshotDiff:
    """Result of comparing snapshot ``base`` to snapshot ``target``."""

    base: str
    target: str
    changed: List[int] = field(default_factory=list)   # present in both, different
    added: List[int] = field(default_factory=list)     # only in target
    removed: List[int] = field(default_factory=list)   # only in base

    def lbas_to_copy(self) -> List[int]:
        """Blocks an incremental backup of ``target`` must transfer."""
        return sorted(self.changed + self.added)

    def is_empty(self) -> bool:
        return not (self.changed or self.added or self.removed)

    def summary(self) -> str:
        return (f"{self.base} -> {self.target}: {len(self.changed)} changed, "
                f"{len(self.added)} added, {len(self.removed)} removed")


def snapshot_diff(device: "IoSnapDevice", base, target,
                  limiter=None) -> SnapshotDiff:
    """Synchronous façade for :func:`snapshot_diff_proc`."""
    return device.kernel.run_process(
        snapshot_diff_proc(device, base, target, limiter), name="snap-diff")


def snapshot_diff_proc(device: "IoSnapDevice", base, target,
                       limiter=None) -> Generator:
    """Compute the block-level difference between two snapshots.

    ``base``/``target`` are snapshot references (name, id, or object).
    Either may also be ``None``, meaning the empty volume — so
    ``snapshot_diff(device, None, "first")`` sizes a full backup.

    One pass over the log's OOB headers folds both snapshots' epoch
    paths simultaneously; the scan is rate-limited like an activation.
    """
    base_snap = device.tree.resolve(base) if base is not None else None
    target_snap = device.tree.resolve(target) if target is not None else None
    if limiter is None:
        limiter = NullLimiter()

    base_path = (frozenset(device.tree.path_epochs(base_snap.epoch))
                 if base_snap is not None else frozenset())
    target_path = (frozenset(device.tree.path_epochs(target_snap.epoch))
                   if target_snap is not None else frozenset())

    base_state, target_state = yield from _fold_two_paths(
        device, base_path, target_path, limiter)

    diff = SnapshotDiff(
        base=base_snap.name if base_snap else "<empty>",
        target=target_snap.name if target_snap else "<empty>")
    for lba in set(base_state) | set(target_state):
        in_base = lba in base_state
        in_target = lba in target_state
        if in_base and not in_target:
            diff.removed.append(lba)
        elif in_target and not in_base:
            diff.added.append(lba)
        elif base_state[lba][0] != target_state[lba][0]:
            # Different winning sequence number => different contents
            # (every write gets a fresh seq; equal seq means the very
            # same packet, possibly relocated).
            diff.changed.append(lba)
    diff.changed.sort()
    diff.added.sort()
    diff.removed.sort()
    return diff


def _fold_two_paths(device: "IoSnapDevice", base_path: frozenset,
                    target_path: frozenset, limiter) -> Generator:
    """One header scan, two simultaneous winner folds.

    Header reads are batched through one pending buffer exactly like
    the activation scan (vectored OOB bursts paced by the limiter); the
    written-extent range is already a stable snapshot view, so no
    per-segment copy is materialized.
    """
    union = base_path | target_path
    base_best: Dict[int, Tuple[int, int]] = {}
    target_best: Dict[int, Tuple[int, int]] = {}
    # Unreadable headers found mid-diff: recorded in the device's
    # damage manifest by the batch reader; the page simply cannot
    # contribute to either fold.
    casualties: list = []
    base_trims: Dict[int, int] = {}
    target_trims: Dict[int, int] = {}
    replay_ns = device.config.cpu.replay_packet_ns
    batch_size = _scan_batch_size(device, limiter)

    def fold(ppn: int, header) -> None:
        if header.epoch not in union:
            return
        for path, best, trims in (
                (base_path, base_best, base_trims),
                (target_path, target_best, target_trims)):
            if header.epoch not in path:
                continue
            if header.kind is PageKind.DATA:
                current = best.get(header.lba)
                if current is None or header.seq >= current[0]:
                    best[header.lba] = (header.seq, ppn)
            elif header.kind is PageKind.NOTE_TRIM:
                if header.seq > trims.get(header.lba, -1):
                    trims[header.lba] = header.seq

    segments = sorted((seg for seg in device.log.segments if seg.seq >= 0),
                      key=lambda seg: seg.seq)
    move_log = device.begin_scan()
    try:
        pending: list = []
        for seg in segments:
            if (device.config.selective_scan
                    and not (device.segment_epoch_summary(seg) & union)):
                continue
            for ppn in seg.written_ppns():
                if (not device.nand.array.is_programmed(ppn)
                        or device.nand.array.is_torn(ppn)):
                    continue
                pending.append(ppn)
                if len(pending) >= batch_size:
                    yield from _read_batch(device, pending, fold, replay_ns,
                                           limiter, casualties)
                    pending = []
        if pending:
            yield from _read_batch(device, pending, fold, replay_ns, limiter,
                                   casualties)
    finally:
        device.end_scan(move_log)

    for best, trims in ((base_best, base_trims),
                        (target_best, target_trims)):
        for lba, trim_seq in trims.items():
            entry = best.get(lba)
            if entry is not None and entry[0] < trim_seq:
                del best[lba]
    return base_best, target_best

"""Snapshot differencing: which blocks changed between two snapshots.

The log *is* a change record: every packet carries (lba, epoch, seq),
so the difference between two snapshots on the same lineage falls out
of one header scan folding both epoch paths — no block contents are
read and no forward maps need to exist.  This is the enabler for
incremental backup (see :mod:`repro.core.destage`) and replication
(:mod:`repro.replicate`): after a full transfer of snapshot A, only
``diff(A, B)`` blocks need to leave the device to reproduce B.

Two entry points share the scan machinery:

- :func:`snapshot_diff_proc` computes the *exact classification*
  (changed / added / removed) by folding both epoch paths in one pass;
- :func:`changed_blocks_proc` computes the *transfer set* for a send.
  When ``base`` is an ancestor of ``target`` (the common incremental
  chain) it folds only the delta epochs — packets on the shared prefix
  fold identically into both snapshots and can never contribute a
  difference — so the epoch-summary index skips every segment that
  holds nothing from the delta.  The price is classification fuzz the
  transfer does not care about: a delta winner is "copy" whether the
  block existed in base or not, and a delta trim is a conservative
  "remove" (trimming an LBA the receiver never mapped is a no-op).

Both scans are rate-limited like an activation, charge simulated read
latency per header batch, and bump the device's ``diff_counters`` so
skipped segments are observable (``info()["snapshots"]["diff"]``).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, Generator, List, Optional, Tuple

from repro.core.activation import _read_batch, _scan_batch_size, _scan_for_path
from repro.ftl.ratelimit import NullLimiter
from repro.nand.oob import PageKind

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.iosnap import IoSnapDevice


def extents_of(lbas: List[int]) -> List[Tuple[int, int]]:
    """Collapse a sorted LBA list into contiguous (start, count) runs."""
    runs: List[Tuple[int, int]] = []
    for lba in lbas:
        if runs and runs[-1][0] + runs[-1][1] == lba:
            runs[-1] = (runs[-1][0], runs[-1][1] + 1)
        else:
            runs.append((lba, 1))
    return runs


@dataclass
class SnapshotDiff:
    """Result of comparing snapshot ``base`` to snapshot ``target``."""

    base: str
    target: str
    changed: List[int] = field(default_factory=list)   # present in both, different
    added: List[int] = field(default_factory=list)     # only in target
    removed: List[int] = field(default_factory=list)   # only in base
    # Sizing: what an incremental transfer of this diff moves.
    block_size: int = 0
    # Scan cost, for diff_reports / profiling.
    scan_ns: int = 0
    segments_skipped: int = 0
    pages_scanned: int = 0
    header_batches: int = 0

    def lbas_to_copy(self) -> List[int]:
        """Blocks an incremental backup of ``target`` must transfer."""
        return sorted(self.changed + self.added)

    def extents(self) -> List[Tuple[int, int]]:
        """Contiguous (start, count) runs of :meth:`lbas_to_copy`."""
        return extents_of(self.lbas_to_copy())

    @property
    def extent_count(self) -> int:
        return len(self.extents())

    @property
    def bytes_to_copy(self) -> int:
        return len(self.lbas_to_copy()) * self.block_size

    def is_empty(self) -> bool:
        return not (self.changed or self.added or self.removed)

    def summary(self) -> str:
        return (f"{self.base} -> {self.target}: {len(self.changed)} changed, "
                f"{len(self.added)} added, {len(self.removed)} removed; "
                f"{self.extent_count} extents, "
                f"{self.bytes_to_copy} bytes to copy")


def snapshot_diff(device: "IoSnapDevice", base, target,
                  limiter=None) -> SnapshotDiff:
    """Synchronous façade for :func:`snapshot_diff_proc`."""
    return device.kernel.run_process(
        snapshot_diff_proc(device, base, target, limiter), name="snap-diff")


def snapshot_diff_proc(device: "IoSnapDevice", base, target,
                       limiter=None) -> Generator:
    """Compute the block-level difference between two snapshots.

    ``base``/``target`` are snapshot references (name, id, or object).
    Either may also be ``None``, meaning the empty volume — so
    ``snapshot_diff(device, None, "first")`` sizes a full backup.

    One pass over the log's OOB headers folds both snapshots' epoch
    paths simultaneously; the scan is rate-limited like an activation.
    """
    base_snap = device.tree.resolve(base) if base is not None else None
    target_snap = device.tree.resolve(target) if target is not None else None
    if limiter is None:
        limiter = NullLimiter()

    base_path = (frozenset(device.tree.path_epochs(base_snap.epoch))
                 if base_snap is not None else frozenset())
    target_path = (frozenset(device.tree.path_epochs(target_snap.epoch))
                   if target_snap is not None else frozenset())

    started = device.kernel.now
    before = device.diff_counters.as_dict()
    base_state, target_state = yield from _fold_two_paths(
        device, base_path, target_path, limiter)

    diff = SnapshotDiff(
        base=base_snap.name if base_snap else "<empty>",
        target=target_snap.name if target_snap else "<empty>",
        block_size=device.block_size)
    for lba in set(base_state) | set(target_state):
        in_base = lba in base_state
        in_target = lba in target_state
        if in_base and not in_target:
            diff.removed.append(lba)
        elif in_target and not in_base:
            diff.added.append(lba)
        elif base_state[lba][0] != target_state[lba][0]:
            # Different winning sequence number => different contents
            # (every write gets a fresh seq; equal seq means the very
            # same packet, possibly relocated).
            diff.changed.append(lba)
    diff.changed.sort()
    diff.added.sort()
    diff.removed.sort()
    _finish_scan_stats(device, diff, started, before, mode="two-path")
    return diff


@dataclass
class ChangedBlocks:
    """The transfer set a send of ``base -> target`` must move.

    ``winners`` is the multi-version lookup's answer for every block in
    ``copy``: the (seq, ppn) of the packet that is ``target``'s version
    of the LBA.  ``removed`` lists LBAs the receiver must trim; in
    ``delta`` mode it is conservative (it may name LBAs base never
    mapped — trimming those is a no-op), in ``two-path`` mode exact.
    """

    base: str
    target: str
    mode: str                                  # "delta" | "two-path"
    copy: List[int] = field(default_factory=list)
    removed: List[int] = field(default_factory=list)
    winners: Dict[int, Tuple[int, int]] = field(default_factory=dict)
    block_size: int = 0
    scan_ns: int = 0
    segments_skipped: int = 0
    pages_scanned: int = 0
    header_batches: int = 0

    def extents(self) -> List[Tuple[int, int]]:
        return extents_of(sorted(self.copy))

    @property
    def bytes_to_copy(self) -> int:
        return len(self.copy) * self.block_size


def changed_blocks(device: "IoSnapDevice", base, target,
                   limiter=None) -> ChangedBlocks:
    """Synchronous façade for :func:`changed_blocks_proc`."""
    return device.kernel.run_process(
        changed_blocks_proc(device, base, target, limiter),
        name="changed-blocks")


def changed_blocks_proc(device: "IoSnapDevice", base, target,
                        limiter=None) -> Generator:
    """Plan a send: exact changed-block set plus target-epoch winners.

    When ``base``'s epoch path is a prefix of ``target``'s (``None``
    base included), only the delta epochs are folded: a packet in a
    shared epoch contributes the *same* winner to both snapshots, so
    it can never make a block differ.  The epoch-summary index then
    skips every segment holding nothing from the delta — on a lightly
    dirtied device this is the difference between scanning 5% of the
    log and all of it.  Outside the ancestor case (diverged branches)
    the exact two-path fold runs instead.
    """
    base_snap = device.tree.resolve(base) if base is not None else None
    target_snap = device.tree.resolve(target) if target is not None else None
    if limiter is None:
        limiter = NullLimiter()
    base_path = (frozenset(device.tree.path_epochs(base_snap.epoch))
                 if base_snap is not None else frozenset())
    target_path = (frozenset(device.tree.path_epochs(target_snap.epoch))
                   if target_snap is not None else frozenset())

    started = device.kernel.now
    before = device.diff_counters.as_dict()
    result = ChangedBlocks(
        base=base_snap.name if base_snap else "<empty>",
        target=target_snap.name if target_snap else "<empty>",
        mode="delta" if base_path <= target_path else "two-path",
        block_size=device.block_size)

    if result.mode == "delta":
        delta = target_path - base_path
        winners, trims, _casualties = yield from _scan_for_path(
            device, delta, limiter, counters=device.diff_counters)
        for lba, trim_seq in trims.items():
            entry = winners.get(lba)
            if entry is not None and entry[0] < trim_seq:
                del winners[lba]
        result.winners = winners
        result.copy = sorted(winners)
        # Conservative: every LBA whose latest delta event is a trim.
        # If base mapped it, it must go; if base never mapped it, the
        # receiver's trim is a no-op.  Either way the receive converges
        # on target's exact content.
        result.removed = sorted(lba for lba in trims if lba not in winners)
    else:
        base_state, target_state = yield from _fold_two_paths(
            device, base_path, target_path, limiter)
        for lba, entry in target_state.items():
            old = base_state.get(lba)
            if old is None or old[0] != entry[0]:
                result.winners[lba] = entry
        result.copy = sorted(result.winners)
        result.removed = sorted(lba for lba in base_state
                                if lba not in target_state)
    _finish_scan_stats(device, result, started, before, mode=result.mode)
    return result


def _finish_scan_stats(device: "IoSnapDevice", result, started: int,
                       before: Dict[str, int], mode: str) -> None:
    """Fill scan-cost fields and append the diff report."""
    after = device.diff_counters.as_dict()
    device.diff_counters.bump("diffs")
    result.scan_ns = device.kernel.now - started
    result.segments_skipped = after["segments_skipped"] \
        - before["segments_skipped"]
    result.pages_scanned = after["pages_scanned"] - before["pages_scanned"]
    result.header_batches = after["header_batches"] - before["header_batches"]
    copy = (result.lbas_to_copy() if isinstance(result, SnapshotDiff)
            else result.copy)
    device.snap_metrics.diff_reports.append({
        "base": result.base,
        "target": result.target,
        "mode": mode,
        "copy": len(copy),
        "removed": len(result.removed),
        "extents": len(extents_of(sorted(copy))),
        "bytes_to_copy": len(copy) * result.block_size,
        "scan_ns": result.scan_ns,
        "segments_skipped": result.segments_skipped,
        "pages_scanned": result.pages_scanned,
        "header_batches": result.header_batches,
    })


def _fold_two_paths(device: "IoSnapDevice", base_path: frozenset,
                    target_path: frozenset, limiter) -> Generator:
    """One header scan, two simultaneous winner folds.

    Header reads are batched through one pending buffer exactly like
    the activation scan (vectored OOB bursts paced by the limiter); the
    written-extent range is already a stable snapshot view, so no
    per-segment copy is materialized.

    Only the *shared-epoch-or-wider* union scan is sound here: a packet
    in a shared epoch can decide "removed" (its LBA trimmed on one path
    only) and "changed vs added", so shared segments cannot be skipped
    the way :func:`changed_blocks_proc`'s delta mode skips them.
    """
    union = base_path | target_path
    counters = device.diff_counters
    base_best: Dict[int, Tuple[int, int]] = {}
    target_best: Dict[int, Tuple[int, int]] = {}
    # Unreadable headers found mid-diff: recorded in the device's
    # damage manifest by the batch reader; the page simply cannot
    # contribute to either fold.
    casualties: list = []
    base_trims: Dict[int, int] = {}
    target_trims: Dict[int, int] = {}
    replay_ns = device.config.cpu.replay_packet_ns
    batch_size = _scan_batch_size(device, limiter)

    def fold(ppn: int, header) -> None:
        if header.epoch not in union:
            return
        for path, best, trims in (
                (base_path, base_best, base_trims),
                (target_path, target_best, target_trims)):
            if header.epoch not in path:
                continue
            if header.kind is PageKind.DATA:
                current = best.get(header.lba)
                if current is None or header.seq >= current[0]:
                    best[header.lba] = (header.seq, ppn)
            elif header.kind is PageKind.NOTE_TRIM:
                if header.seq > trims.get(header.lba, -1):
                    trims[header.lba] = header.seq

    segments = sorted((seg for seg in device.log.segments if seg.seq >= 0),
                      key=lambda seg: seg.seq)
    move_log = device.begin_scan()
    try:
        pending: list = []
        for seg in segments:
            if (device.config.selective_scan
                    and not device.segment_intersects_epochs(seg, union)):
                counters.bump("segments_skipped")
                continue
            for ppn in seg.written_ppns():
                if (not device.nand.array.is_programmed(ppn)
                        or device.nand.array.is_torn(ppn)):
                    continue
                pending.append(ppn)
                if len(pending) >= batch_size:
                    counters.bump("pages_scanned", len(pending))
                    counters.bump("header_batches")
                    yield from _read_batch(device, pending, fold, replay_ns,
                                           limiter, casualties)
                    pending = []
        if pending:
            counters.bump("pages_scanned", len(pending))
            counters.bump("header_batches")
            yield from _read_batch(device, pending, fold, replay_ns, limiter,
                                   casualties)
    finally:
        device.end_scan(move_log)

    for best, trims in ((base_best, base_trims),
                        (target_best, target_trims)):
        for lba, trim_seq in trims.items():
            entry = best.get(lba)
            if entry is not None and entry[0] < trim_seq:
                del best[lba]
    return base_best, target_best

"""Rolling the active volume back to a snapshot's state.

The paper's API stops at activation ("snapshots are activated to
restore lost or corrupted data"); actually *restoring* is left to the
administrator.  This module packages the obvious procedure:

1. activate the snapshot (rate-limited if desired);
2. trim every active block the snapshot does not contain;
3. rewrite every block whose current physical page differs from the
   snapshot's — blocks that still point at the very same page (the
   common case soon after a snapshot) are skipped for free, because
   remap-on-write means "same PPN" is proof of "same contents";
4. deactivate.

The rollback is performed *through* the normal write path, so it is
itself crash-safe: a crash mid-rollback recovers to a consistent
mixed state, never a corrupt one, and the snapshot itself is untouched
either way (it can simply be rolled back to again).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, Generator

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.iosnap import IoSnapDevice


def snapshot_rollback(device: "IoSnapDevice", ref, limiter=None) -> Dict:
    """Synchronous façade for :func:`snapshot_rollback_proc`."""
    return device.kernel.run_process(
        snapshot_rollback_proc(device, ref, limiter), name="rollback")


def snapshot_rollback_proc(device: "IoSnapDevice", ref,
                           limiter=None) -> Generator:
    """Make the active volume's contents equal the snapshot's.

    Returns a report: blocks rewritten, trimmed, and skipped (already
    identical).  The snapshot remains live afterwards.
    """
    snap = device.tree.resolve(ref)
    started = device.kernel.now
    activated = yield from device.snapshot_activate_proc(snap, limiter)
    rewritten = 0
    trimmed = 0
    skipped = 0
    try:
        snapshot_map = dict(activated.map.items())
        for lba, _ppn in list(device.map.items()):
            if lba not in snapshot_map:
                yield from device.trim_proc(lba)
                trimmed += 1
        for lba, snap_ppn in snapshot_map.items():
            if device.map.get(lba) == snap_ppn:
                # Remap-on-write: identical PPN proves identical bytes.
                skipped += 1
                continue
            data = yield from activated.read_proc(lba)
            yield from device.write_proc(lba, data)
            rewritten += 1
    finally:
        yield from device.snapshot_deactivate_proc(activated)
    return {
        "snapshot": snap.name,
        "rewritten": rewritten,
        "trimmed": trimmed,
        "skipped_identical": skipped,
        "duration_ns": device.kernel.now - started,
    }

"""Activation residues and the warm-activation cache.

Activating a snapshot costs a log scan (paper §5.6/Figure 9) — but a
snapshot's ancestor path is frozen at creation, so its winners/trims
fold is *immutable*: only the physical location of winner pages changes
afterwards, via cleaner copy-forwards.  A deactivated snapshot can
therefore leave behind an :class:`ActivationResidue` — its folded
winners/trims digest plus the exact log coordinates it was built from
(per-segment allocation seq + written extent, and the global seq
watermark) — and a later re-activation only has to re-fold the log
regions that changed past those coordinates (see
``core.activation._scan_for_path``).

The :class:`ResidueCache` is a bounded, memory-accounted LRU of
residues kept exactly current:

- cleaner copy-forwards are applied to cached winners at relocate time
  (``IoSnapDevice._relocate`` -> :meth:`ResidueCache.on_block_moved`),
  mirroring what live activations get via ``on_block_moved``;
- invalidation hooks drop residues on snapshot delete, on epoch
  reclamation (any snapshot delete reclaims its epoch — residues whose
  path crosses it are conservatively dropped), and on cleaner erase of
  a segment a residue's winners still reference (a backstop: winners
  are normally relocated out before the erase, so a remaining
  reference means the fixups were bypassed).

Counters (``hits``/``misses``/``invalidations`` here,
``segments_skipped``/``pages_scanned`` bumped by the scan itself) are
shared through one :class:`repro.sim.stats.Counters` owned by the
device and surfaced via ``info()`` and the activation reports.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Dict, Optional, Tuple

from repro.sim.stats import Counters

# Deterministic per-entry accounting estimates (bytes).  Real dict
# overhead varies by interpreter; what matters is that eviction
# pressure scales with entry counts the same way on every run.
_WINNER_ENTRY_BYTES = 48      # lba -> (seq, ppn)
_TRIM_ENTRY_BYTES = 32        # lba -> seq
_SEGMENT_ENTRY_BYTES = 40     # seg index -> (gen, offset)
_RESIDUE_BASE_BYTES = 256


class ActivationResidue:
    """The reusable part of a finished activation.

    ``winners``/``trims`` are the post-trim fold for ``path`` as of
    ``watermark`` (the device's packet-seq counter at capture time).
    ``seg_vector`` records, for every segment allocated at capture
    time, ``(allocation seq, written extent)`` — a later rescan skips
    segments still at the recorded coordinates, scans only the tail of
    segments that grew, and fully rescans segments whose allocation seq
    changed (erased and reused since).
    """

    __slots__ = ("snap_id", "path", "winners", "trims", "watermark",
                 "seg_vector", "seg_pages", "_seg_refs")

    def __init__(self, snap_id: int, path: frozenset,
                 winners: Dict[int, Tuple[int, int]], trims: Dict[int, int],
                 watermark: int, seg_vector: Dict[int, Tuple[int, int]],
                 seg_pages: int) -> None:
        self.snap_id = snap_id
        self.path = path
        self.winners = winners
        self.trims = trims
        self.watermark = watermark
        self.seg_vector = seg_vector
        self.seg_pages = seg_pages
        # Winner-reference counts per segment index, maintained through
        # moves so the erase backstop is O(1) per erase.
        self._seg_refs: Dict[int, int] = {}
        for _seq, ppn in winners.values():
            index = ppn // seg_pages
            self._seg_refs[index] = self._seg_refs.get(index, 0) + 1

    def memory_bytes(self) -> int:
        return (_RESIDUE_BASE_BYTES
                + len(self.winners) * _WINNER_ENTRY_BYTES
                + len(self.trims) * _TRIM_ENTRY_BYTES
                + (len(self.seg_vector) + len(self._seg_refs))
                * _SEGMENT_ENTRY_BYTES)

    def references_segment(self, index: int) -> bool:
        return self._seg_refs.get(index, 0) > 0

    def on_block_moved(self, lba: int, old_ppn: int, new_ppn: int) -> None:
        """Follow a cleaner copy-forward, like a live activation does."""
        entry = self.winners.get(lba)
        if entry is None or entry[1] != old_ppn:
            return
        self.winners[lba] = (entry[0], new_ppn)
        old_index = old_ppn // self.seg_pages
        new_index = new_ppn // self.seg_pages
        if old_index == new_index:
            return
        remaining = self._seg_refs.get(old_index, 0) - 1
        if remaining > 0:
            self._seg_refs[old_index] = remaining
        else:
            self._seg_refs.pop(old_index, None)
        self._seg_refs[new_index] = self._seg_refs.get(new_index, 0) + 1


class ResidueCache:
    """Bounded LRU of :class:`ActivationResidue`, keyed by snapshot id."""

    def __init__(self, max_entries: int, max_bytes: int,
                 counters: Counters) -> None:
        self.max_entries = max_entries
        self.max_bytes = max_bytes
        self.counters = counters
        self._entries: "OrderedDict[int, ActivationResidue]" = OrderedDict()

    @property
    def enabled(self) -> bool:
        return self.max_entries > 0 and self.max_bytes > 0

    def __len__(self) -> int:
        return len(self._entries)

    def memory_bytes(self) -> int:
        return sum(res.memory_bytes() for res in self._entries.values())

    # -- cache protocol ------------------------------------------------------
    def put(self, residue: ActivationResidue) -> None:
        if not self.enabled or residue.memory_bytes() > self.max_bytes:
            return
        self._entries.pop(residue.snap_id, None)
        self._entries[residue.snap_id] = residue
        while (len(self._entries) > self.max_entries
               or self.memory_bytes() > self.max_bytes):
            self._entries.popitem(last=False)

    def take(self, snap_id: int, path: frozenset,
             ) -> Optional[ActivationResidue]:
        """Remove and return the residue for ``snap_id``, if reusable.

        Move semantics: while the activation is live, the activation's
        own winner tracking receives the cleaner fixups; the refreshed
        digest comes back via :meth:`put` on deactivate.
        """
        if not self.enabled:
            return None
        residue = self._entries.pop(snap_id, None)
        if residue is not None and residue.path != path:
            # The tree resolved a different ancestor path than the one
            # the residue was folded for (cannot happen for an
            # unchanged snapshot; treated as an invalidation).
            self.counters.bump("invalidations")
            residue = None
        self.counters.bump("hits" if residue is not None else "misses")
        return residue

    def clear(self) -> None:
        self._entries.clear()

    # -- invalidation hooks --------------------------------------------------
    def invalidate_snapshot(self, snap_id: int) -> None:
        if self._entries.pop(snap_id, None) is not None:
            self.counters.bump("invalidations")

    def invalidate_epoch(self, epoch: int) -> None:
        """Epoch reclamation: drop residues whose path crosses ``epoch``."""
        stale = [snap_id for snap_id, res in self._entries.items()
                 if epoch in res.path]
        for snap_id in stale:
            del self._entries[snap_id]
            self.counters.bump("invalidations")

    def on_segment_erased(self, index: int) -> None:
        """Backstop: a residue still referencing an erased segment is
        unusable (its winners would point at erased media)."""
        stale = [snap_id for snap_id, res in self._entries.items()
                 if res.references_segment(index)]
        for snap_id in stale:
            del self._entries[snap_id]
            self.counters.bump("invalidations")

    def on_block_moved(self, lba: int, old_ppn: int, new_ppn: int) -> None:
        for residue in self._entries.values():
            residue.on_block_moved(lba, old_ppn, new_ppn)

    def on_block_lost(self, lba: Optional[int], ppn: int) -> None:
        """A media fault destroyed ``ppn``: a residue whose winner for
        ``lba`` still points there would resurrect unreadable data on
        the next warm activation — drop it."""
        if lba is None:
            return
        stale = [snap_id for snap_id, res in self._entries.items()
                 if res.winners.get(lba, (None, None))[1] == ppn]
        for snap_id in stale:
            del self._entries[snap_id]
            self.counters.bump("invalidations")

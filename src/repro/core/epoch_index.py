"""The durable selective-scan index (paper §7, "selectively scanning").

Activation and diff scans skip whole segments whose *epoch summary*
does not intersect the snapshot's ancestor path.  This module owns that
summary: for every allocated segment, the set of epochs with DATA/TRIM
packets in it plus the highest packet sequence number that ever landed
there (the *high-water mark* the delta-rescan machinery keys on).

The index is maintained exactly — not as a superset — through every
append (:meth:`SegmentEpochIndex.note_packet`, called from the FTL's
``_on_packet_appended`` hook for foreground writes, trims, and cleaner
copy-forwards alike) and through every erase
(:meth:`SegmentEpochIndex.drop_segment`).  Exactness is what lets fsck
check it by equality (invariant S7) and what makes the warm-activation
residue cache sound.

Durability: :meth:`dump` serializes the index into the checkpoint's
``extra`` stream, stamped with the checkpoint generation and each
segment's allocation sequence number ("generation"), plus a CRC over
the canonical image.  :meth:`restore` is validation-first — any CRC,
generation, or per-segment mismatch raises
:class:`~repro.errors.SummaryIndexError` and the caller falls back to
:meth:`rebuild_from_media`, the same full OOB sweep crash recovery
performs.
"""

from __future__ import annotations

import zlib
from typing import TYPE_CHECKING, Any, Dict, Set, Tuple

from repro.errors import SummaryIndexError
from repro.nand.oob import PageKind

if TYPE_CHECKING:  # pragma: no cover
    from repro.ftl.log import Log, Segment

# Kinds the index (and every scan that consults it) cares about: data
# packets and trim notes are the only packets the winner fold reads.
_INDEXED_KINDS = (PageKind.DATA, PageKind.NOTE_TRIM)


def recompute_segment(array, seg: "Segment") -> Tuple[Set[int], int]:
    """Recompute one segment's (epoch set, max seq) from OOB headers.

    Untimed media access (like fsck): used by the fsck S7 check, the
    sanitizer's pre-erase audit, and the media-rebuild fallback.  Torn
    and unprogrammed pages carry no packet and are skipped, matching
    what ``_on_packet_appended`` ever saw.
    """
    epochs: Set[int] = set()
    max_seq = -1
    for ppn in seg.written_ppns():
        if not array.is_programmed(ppn) or array.is_torn(ppn):
            continue
        header = array.read_header(ppn)
        if header.kind in _INDEXED_KINDS:
            epochs.add(header.epoch)
            if header.seq > max_seq:
                max_seq = header.seq
    return epochs, max_seq


class SegmentEpochIndex:
    """Per-segment epoch summaries + max-seq high-water marks."""

    __slots__ = ("epochs", "max_seq")

    def __init__(self) -> None:
        # Segment index -> set of epochs with DATA/TRIM packets there.
        self.epochs: Dict[int, Set[int]] = {}
        # Segment index -> highest DATA/TRIM packet seq in the segment.
        self.max_seq: Dict[int, int] = {}

    # -- maintenance ---------------------------------------------------------
    def note_packet(self, index: int, epoch: int, seq: int) -> None:
        self.epochs.setdefault(index, set()).add(epoch)
        if seq > self.max_seq.get(index, -1):
            self.max_seq[index] = seq

    def drop_segment(self, index: int) -> None:
        self.epochs.pop(index, None)
        self.max_seq.pop(index, None)

    # -- queries -------------------------------------------------------------
    def summary(self, index: int) -> frozenset:
        return frozenset(self.epochs.get(index, ()))

    def high_water(self, index: int) -> int:
        return self.max_seq.get(index, -1)

    def intersects(self, index: int, epochs) -> bool:
        """Does segment ``index`` hold any packet from ``epochs``?

        The allocation-free form of ``summary(index) & epochs`` used by
        the scan loops (activation, snapshot diff, replication send):
        a selective scan consults this once per allocated segment, so
        it must not materialize a frozenset per call.
        """
        stored = self.epochs.get(index)
        return stored is not None and not stored.isdisjoint(epochs)

    def segments_matching(self, epochs) -> Set[int]:
        """Segment indices whose epoch set intersects ``epochs``.

        The changed-block planner uses this to size a delta send before
        scanning anything: only these segments can contribute packets
        to the epochs being differenced.
        """
        return {index for index, stored in self.epochs.items()
                if not stored.isdisjoint(epochs)}

    # -- durability ----------------------------------------------------------
    def dump(self, log: "Log", generation: int) -> Dict[str, Any]:
        """Serialize the index for the checkpoint ``extra`` stream.

        Every *allocated* segment (``seg.seq >= 0``) gets an entry even
        when it holds no indexed packets, so restore can tell "empty
        summary" apart from "segment the index never saw".
        """
        segments: Dict[int, Tuple[int, int, Tuple[int, ...]]] = {}
        for seg in log.segments:
            if seg.seq < 0:
                continue
            segments[seg.index] = (
                seg.seq,
                self.max_seq.get(seg.index, -1),
                tuple(sorted(self.epochs.get(seg.index, ()))),
            )
        return {
            "generation": generation,
            "segments": segments,
            "crc": _image_crc(generation, segments),
        }

    @classmethod
    def restore(cls, image: Dict[str, Any], log: "Log",
                generation: Any) -> "SegmentEpochIndex":
        """Validation-first restore of a dumped index.

        The image must carry a matching CRC, be stamped with the
        checkpoint generation being restored, and agree with the log's
        adopted segment bookkeeping: exactly the allocated segments,
        each under the allocation seq ("generation") it was dumped
        with.  Any mismatch raises :class:`SummaryIndexError` — the
        caller falls back to :meth:`rebuild_from_media` rather than
        trusting a stale index (a stale summary would silently drop
        segments from selective scans).
        """
        if not isinstance(image, dict):
            raise SummaryIndexError("epoch-index image is not a mapping")
        segments = image.get("segments")
        if not isinstance(segments, dict):
            raise SummaryIndexError("epoch-index image missing segments")
        if image.get("generation") != generation:
            raise SummaryIndexError(
                f"epoch-index generation {image.get('generation')!r} does "
                f"not match checkpoint generation {generation!r}")
        if image.get("crc") != _image_crc(image.get("generation"), segments):
            raise SummaryIndexError("epoch-index CRC mismatch")
        live = {seg.index: seg.seq for seg in log.segments if seg.seq >= 0}
        ghosts = set(segments) - set(live)
        if ghosts:
            raise SummaryIndexError(
                f"epoch-index names segments {sorted(ghosts)[:5]} absent "
                "from the log")
        # Checkpoint pages are themselves appended to the log *after*
        # the index is dumped, with the cleaner parked — so a segment
        # allocated after every dumped one can only hold CHECKPOINT
        # pages (never indexed) and is legitimately absent from the
        # image with an empty summary.  Anything older is real drift.
        newest_dumped = max((entry[0] for entry in segments.values()),
                            default=-1)
        for seg_index in set(live) - set(segments):
            if live[seg_index] <= newest_dumped:
                raise SummaryIndexError(
                    f"epoch-index missing segment {seg_index} (allocated "
                    "before the dump)")
        index = cls()
        for seg_index, entry in segments.items():
            gen, max_seq, epochs = entry
            if gen != live[seg_index]:
                raise SummaryIndexError(
                    f"segment {seg_index} generation {gen} != log "
                    f"generation {live[seg_index]}")
            if epochs:
                index.epochs[seg_index] = set(epochs)
            if max_seq >= 0:
                index.max_seq[seg_index] = max_seq
            if bool(epochs) != (max_seq >= 0):
                raise SummaryIndexError(
                    f"segment {seg_index} summary/high-water disagree "
                    f"({sorted(epochs)} vs {max_seq})")
        return index

    @classmethod
    def rebuild_from_media(cls, array, log: "Log") -> "SegmentEpochIndex":
        """Full-media fallback: recompute every allocated segment's
        summary from OOB headers (untimed, like fsck)."""
        index = cls()
        for seg in log.segments:
            if seg.seq < 0:
                continue
            epochs, max_seq = recompute_segment(array, seg)
            if epochs:
                index.epochs[seg.index] = epochs
            if max_seq >= 0:
                index.max_seq[seg.index] = max_seq
        return index


def _image_crc(generation: Any, segments: Dict[int, Tuple]) -> int:
    """CRC32 over a canonical rendering of the dumped image."""
    canon = (generation, tuple(sorted(
        (index, tuple(entry)) for index, entry in segments.items())))
    return zlib.crc32(repr(canon).encode("ascii"))

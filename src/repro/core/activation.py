"""Snapshot activation: the deliberate slow path (paper §5.6).

ioSnap keeps no forward map for dormant snapshots, so making one
accessible means scanning the log's OOB headers, selecting the packets
whose epoch lies on the snapshot's ancestor path, resolving winners by
sequence number, and bulk-loading a fresh B+tree.

The scan competes with foreground I/O for the device, which is the
whole point of Figure 9: unthrottled it roughly 10x-es foreground read
latency; a :class:`~repro.ftl.ratelimit.DutyCycleLimiter` trades
activation time for foreground latency.

Concurrency contract with the segment cleaner:

- while a scan is in progress the cleaner may keep copying blocks but
  must not *erase* (``ftl.erase_barrier``), so every PPN the scan saw
  stays readable;
- all moves during the scan are recorded in a move log
  (``ftl.begin_scan``); the fixups are applied before the activated
  map goes live, so it never points into a segment that later gets
  erased.

Acceleration (this layer's §7 extensions): with ``selective_scan`` the
per-segment epoch-summary index skips segments with nothing on the
snapshot's path, and a re-activation that finds an
:class:`~repro.core.residue.ActivationResidue` in the warm cache folds
only the log regions that changed since the residue was captured — a
*delta rescan*.  Soundness rests on the path being frozen: the
winners/trims set of a snapshot never changes after creation, only
winner locations move (cleaner copy-forwards, which update the residue
in place), so folding the changed regions over the residue with the
same ``>=`` tie-break converges to exactly the full scan's winners.
"""

from __future__ import annotations

import zlib
from typing import TYPE_CHECKING, Dict, Generator, Optional, Tuple

from repro.core.residue import ActivationResidue
from repro.errors import SnapshotError, UncorrectableError
from repro.ftl.btree import BPlusTree
from repro.ftl.packet import SnapActivateNote
from repro.ftl.ratelimit import NullLimiter
from repro.nand.oob import OobHeader, PageKind

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.iosnap import IoSnapDevice
    from repro.core.snaptree import Snapshot


class ActivatedSnapshot:
    """A block-device view of an activated snapshot.

    Read-only by default (the paper's prototype); writable when the
    device was configured with ``writable_activations`` — writes then
    land in the activation's own epoch and never disturb the snapshot
    (paper §5.6: "produces a new writable device which resembles the
    snapshot (but never overwrites the snapshot)").
    """

    def __init__(self, ftl: "IoSnapDevice", snapshot: "Snapshot",
                 epoch: int, fmap: BPlusTree, writable: bool,
                 scan_ns: int, reconstruct_ns: int, path: frozenset,
                 winners: Dict[int, Tuple[int, int]],
                 trims: Dict[int, int],
                 damage: Optional[list] = None) -> None:
        self.ftl = ftl
        self.snapshot = snapshot
        self.epoch = epoch
        self.map = fmap
        self.writable = writable
        self.scan_ns = scan_ns
        self.reconstruct_ns = reconstruct_ns
        self.num_lbas = ftl.num_lbas
        # The scan's fold, tracked separately from ``map``: writable
        # activations mutate the map, but the snapshot's own winners
        # digest must stay pristine — it seeds the deactivation
        # residue for later delta rescans.
        self.path = path
        self._winners = winners
        self._trims = trims
        # PPNs the activation scan found uncorrectable: the map is
        # partial and this is the caller's damage report for it (the
        # device-wide manifest has the full entries).
        self.damage: list = list(damage or [])
        # LBAs *this view* lost to media faults while live.  Tracked
        # per activation rather than through the device-wide manifest:
        # a loss that struck the active tree (or another snapshot) must
        # not make this snapshot's reads raise.
        self._lost_lbas: set = set()
        self._closed = False

    # -- lifecycle -----------------------------------------------------------
    def mark_closed(self) -> None:
        self._closed = True

    def deactivate(self) -> None:
        self.ftl.snapshot_deactivate(self)

    def _require_live(self) -> None:
        if self._closed:
            raise SnapshotError("activation has been deactivated")

    # -- cleaner integration --------------------------------------------------
    def on_block_moved(self, lba: int, old_ppn: int, new_ppn: int) -> None:
        """Track a copy-forward: activated maps must follow moved blocks
        ("multiple updates to the map when the packet is moved")."""
        if self.map.get(lba) == old_ppn:
            self.map.insert(lba, new_ppn)
        entry = self._winners.get(lba)
        if entry is not None and entry[1] == old_ppn:
            self._winners[lba] = (entry[0], new_ppn)

    def on_block_lost(self, ppn: int, lba: Optional[int]) -> None:
        """A media fault destroyed ``ppn``: drop it from this view too.

        Mirrors :meth:`on_block_moved` for the loss case — subsequent
        reads of the LBA fail with the typed media error instead of
        chasing an unreadable page.
        """
        if lba is None:
            return
        if self.map.get(lba) == ppn:
            self.map.delete(lba)
            self._lost_lbas.add(lba)
        entry = self._winners.get(lba)
        if entry is not None and entry[1] == ppn:
            del self._winners[lba]
            self.damage.append(ppn)

    def build_residue(self) -> ActivationResidue:
        """Capture the reusable digest for the warm-activation cache."""
        ftl = self.ftl
        seg_vector = {seg.index: (seg.seq, seg.next_offset)
                      for seg in ftl.log.segments if seg.seq >= 0}
        return ActivationResidue(
            snap_id=self.snapshot.snap_id, path=self.path,
            winners=dict(self._winners), trims=dict(self._trims),
            watermark=ftl._next_seq, seg_vector=seg_vector,
            seg_pages=ftl.log.segment_pages)

    # -- I/O ----------------------------------------------------------------
    def read(self, lba: int) -> bytes:
        return self.ftl.kernel.run_process(self.read_proc(lba),
                                           name=f"snap-read@{lba}")

    def read_proc(self, lba: int) -> Generator:
        self._require_live()
        if not 0 <= lba < self.num_lbas:
            raise SnapshotError(f"lba {lba} out of range")
        ppn = self.map.get(lba)
        if ppn is None:
            if lba in self._lost_lbas:
                raise UncorrectableError(
                    f"lba {lba} of snapshot {self.snapshot.name!r} was "
                    "lost to a media fault (see the damage report)")
            yield self.ftl.config.cpu.unmapped_read_ns
            return bytes(self.ftl.block_size)
        record = yield from self.ftl.nand.read_page(ppn)
        return self.ftl._payload(record)

    def content_digests(self, lbas=None) -> Dict[int, int]:
        return self.ftl.kernel.run_process(self.content_digests_proc(lbas),
                                           name="snap-digests")

    def content_digests_proc(self, lbas=None) -> Generator:
        """Per-LBA CRC32 digests read through the real activation path.

        ``lbas`` defaults to every LBA this activation maps; pass an
        explicit iterable to digest a fixed window (replication's
        end-to-end verification digests the transferred set on both
        devices and compares).  Reads go through :meth:`read_proc`, so
        the digests attest to what the device actually serves — map
        entries pointing at erased or unreadable media cannot pass.
        """
        self._require_live()
        if lbas is None:
            lbas = [lba for lba, _ppn in self.map.items()]
        digests: Dict[int, int] = {}
        for lba in sorted(set(lbas)):
            data = yield from self.read_proc(lba)
            digests[lba] = zlib.crc32(data) & 0xFFFFFFFF
        return digests

    def write(self, lba: int, data: Optional[bytes] = None) -> None:
        self.ftl.kernel.run_process(self.write_proc(lba, data),
                                    name=f"snap-write@{lba}")

    def write_proc(self, lba: int, data: Optional[bytes] = None) -> Generator:
        """Write into the activation's fork epoch (writable extension)."""
        self._require_live()
        if not self.writable:
            raise SnapshotError(
                "activation is read-only (enable writable_activations)")
        if not 0 <= lba < self.num_lbas:
            raise SnapshotError(f"lba {lba} out of range")
        header = OobHeader(kind=PageKind.DATA, lba=lba, epoch=self.epoch,
                           seq=self.ftl._bump_seq(),
                           length=len(data) if data is not None else 0)
        ppn, done = yield from self.ftl.log.append(header, data)
        self.ftl._on_packet_appended(ppn, header)
        bitmap = self.ftl._epoch_bitmaps[self.epoch]
        old = self.map.insert(lba, ppn)
        bitmap.set(ppn)
        if old is not None and bitmap.test(old):
            bitmap.clear(old)
        self.ftl.cleaner.maybe_kick()
        if self.ftl.config.sync_writes:
            yield done


def activate_proc(ftl: "IoSnapDevice", snap: "Snapshot",
                  limiter=None) -> Generator:
    """The five activation steps of paper §5.8."""
    # Step 1: validate the snapshot exists (resolve() already did) and
    # is not deleted.
    if snap.deleted:
        raise SnapshotError(f"snapshot {snap.name!r} is deleted")
    if limiter is None:
        limiter = NullLimiter()

    # Step 2: persist an activate note (crash-correct reconstruction).
    # Step 3: increment the epoch counter — the activation gets a fork
    # epoch inheriting the snapshot's blocks.
    new_epoch = ftl.tree.peek_next_epoch()
    note = SnapActivateNote(snap_id=snap.snap_id, new_epoch=new_epoch)
    yield from ftl._append_note(note, PageKind.NOTE_SNAP_ACTIVATE)
    epoch = ftl.tree.new_activation_epoch(snap)
    assert epoch == new_epoch

    # Step 4: reconstruct the snapshot's FTL from the log.  A residue
    # left by a previous deactivation turns the scan into a delta
    # rescan over only the regions that changed since.
    scan_started = ftl.kernel.now
    path = frozenset(ftl.tree.path_epochs(snap.epoch))
    counters_before = ftl.activation_counters.as_dict()
    move_log = ftl.begin_scan()
    try:
        residue = ftl._residues.take(snap.snap_id, path)
        mode = ("delta" if residue is not None
                else "selective" if ftl.config.selective_scan else "full")
        winners, trims, casualties = yield from _scan_for_path(
            ftl, path, limiter, residue=residue)
        for lba, trim_seq in trims.items():
            entry = winners.get(lba)
            if entry is not None and entry[0] < trim_seq:
                del winners[lba]
        scan_ns = ftl.kernel.now - scan_started

        # Reconstruction: bulk-load a compact tree (paper §6.2.2 notes
        # the activated tree is *more* compact than the fragmented
        # active tree), paced like the scan.
        reconstruct_started = ftl.kernel.now
        items = sorted((lba, ppn) for lba, (_seq, ppn) in winners.items())
        per_entry = ftl.config.cpu.map_bulk_insert_ns
        chunk = 1024
        for index in range(0, len(items), chunk):
            cost = len(items[index:index + chunk]) * per_entry
            yield cost
            yield from limiter.pace(cost)
        fmap = BPlusTree.bulk_load(items, order=ftl.config.map_order)

        # Apply move-log fixups and publish atomically (no yields from
        # here to end_scan): the map must not reference pages the
        # cleaner is waiting to erase.
        for old_ppn, new_ppn, header in move_log:
            if fmap.get(header.lba) == old_ppn:
                fmap.insert(header.lba, new_ppn)
            entry = winners.get(header.lba)
            if entry is not None and entry[1] == old_ppn:
                winners[header.lba] = (entry[0], new_ppn)
        writable = ftl.config.writable_activations
        if writable:
            ftl._epoch_bitmaps[epoch] = ftl._epoch_bitmaps[snap.epoch].fork()
        activated = ActivatedSnapshot(
            ftl, snap, epoch, fmap, writable,
            scan_ns=scan_ns,
            reconstruct_ns=ftl.kernel.now - reconstruct_started,
            path=path, winners=winners, trims=trims,
            damage=casualties)
        ftl._activations.append(activated)
    finally:
        ftl.end_scan(move_log)

    counters_after = ftl.activation_counters.as_dict()
    ftl.snap_metrics.activation_reports.append({
        "snapshot": snap.name,
        "mode": mode,
        "scan_ns": activated.scan_ns,
        "reconstruct_ns": activated.reconstruct_ns,
        "total_ns": ftl.kernel.now - scan_started,
        "entries": len(activated.map),
        "map_nodes": activated.map.node_count(),
        "map_bytes": activated.map.memory_bytes(),
        "segments_skipped": (counters_after["segments_skipped"]
                             - counters_before["segments_skipped"]),
        "pages_scanned": (counters_after["pages_scanned"]
                          - counters_before["pages_scanned"]),
        "pages_lost": len(activated.damage),
    })
    return activated


def _scan_batch_size(ftl: "IoSnapDevice", limiter) -> int:
    """How many header reads to keep in flight per scan burst.

    The scan is vectored I/O: an unthrottled scan keeps the device's
    queues deep (that is exactly why naive activation 10x-es foreground
    latency, Figure 9a).  A duty-cycle limiter bounds the burst to what
    fits its work quantum, which reduces both the *frequency* and the
    *depth* of the interference — the paper's "degree of interspersing".
    """
    default = ftl.config.activation_scan_batch
    work_ns = getattr(limiter, "work_ns", None)
    if work_ns is None:
        return default
    per_read_ns = max(1, ftl.nand.timing.read_page_ns
                      + ftl.config.cpu.replay_packet_ns)
    return max(1, min(default, work_ns // per_read_ns))


def _scan_for_path(ftl: "IoSnapDevice", path: frozenset, limiter,
                   residue: Optional[ActivationResidue] = None,
                   counters=None) -> Generator:
    """Fold path-epoch packets from the log into ``(winners, trims)``.

    Without a residue the entire log is read (paper §6.2.2: "the
    entire log needs to be read to ensure all the blocks belonging to
    the snapshot are identified correctly") — modulo the selective-scan
    summary skip.  With a residue the fold starts from its digest and
    only the regions that changed since its capture are read: segments
    still at the recorded (allocation seq, extent) coordinates are
    skipped outright, segments that merely grew are scanned from the
    recorded extent, and segments whose allocation seq changed (erased
    and reused) are rescanned in full.  Re-folding a cleaner duplicate
    over the residue is idempotent under the ``>=`` tie-break, so both
    paths converge to the same winners.
    """
    winners: Dict[int, Tuple[int, int]] = \
        dict(residue.winners) if residue is not None else {}
    trims: Dict[int, int] = \
        dict(residue.trims) if residue is not None else {}
    casualties: list = []
    segments = sorted((seg for seg in ftl.log.segments if seg.seq >= 0),
                      key=lambda seg: seg.seq)
    replay_ns = ftl.config.cpu.replay_packet_ns
    batch_size = _scan_batch_size(ftl, limiter)
    # Callers other than activation (snapshot diffing, replication
    # sends) pass their own counter set so their scans do not inflate
    # the activation acceleration metrics.
    if counters is None:
        counters = ftl.activation_counters

    def fold(ppn: int, header) -> None:
        if header.epoch not in path:
            return
        if header.kind is PageKind.DATA:
            # ">=": the cleaner leaves identical (lba, seq) duplicates
            # behind until it erases the source segment; the later log
            # position is always the fresher copy, never the one
            # pending erase.
            current = winners.get(header.lba)
            if current is None or header.seq >= current[0]:
                winners[header.lba] = (header.seq, ppn)
        elif header.kind is PageKind.NOTE_TRIM:
            if header.seq > trims.get(header.lba, -1):
                trims[header.lba] = header.seq

    pending: list = []
    selective = ftl.config.selective_scan
    for seg in segments:
        start_offset = 1
        if residue is not None:
            recorded = residue.seg_vector.get(seg.index)
            if recorded is not None and recorded[0] == seg.seq:
                if recorded[1] >= seg.next_offset:
                    # Unchanged since the residue was captured; its
                    # packets are already folded into the digest.
                    counters.bump("segments_skipped")
                    continue
                start_offset = recorded[1]
        if selective and not ftl.segment_intersects_epochs(seg, path):
            # §7 extension: nothing from the snapshot's epoch path ever
            # landed in this segment — skip it wholesale.
            counters.bump("segments_skipped")
            continue
        for ppn in seg.written_ppns(start_offset):
            # A concurrent append may have reserved (but not yet
            # programmed) the tail of the open segment; a torn page is
            # power-cut residue awaiting erase — neither holds a packet.
            if (not ftl.nand.array.is_programmed(ppn)
                    or ftl.nand.array.is_torn(ppn)):
                continue
            pending.append(ppn)
            if len(pending) >= batch_size:
                counters.bump("pages_scanned", len(pending))
                counters.bump("header_batches")
                yield from _read_batch(ftl, pending, fold, replay_ns,
                                       limiter, casualties)
                pending = []
    if pending:
        counters.bump("pages_scanned", len(pending))
        counters.bump("header_batches")
        yield from _read_batch(ftl, pending, fold, replay_ns, limiter,
                               casualties)
    return winners, trims, casualties


def _read_batch(ftl: "IoSnapDevice", ppns: list, fold,
                replay_ns: int, limiter, casualties: list) -> Generator:
    """Issue one vectored burst of OOB reads, fold results, then pace.

    Header reads use the salvage path: an uncorrectable page comes back
    as None instead of raising (a raise from a spawned-but-not-yet-
    joined process would be an unobserved failure).  Casualties are
    struck from the device's structures and reported with the partial
    map rather than aborting the whole activation.
    """
    started = ftl.kernel.now
    procs = [ftl.kernel.spawn(ftl.nand.read_header(ppn, salvage=True),
                              name=f"scan@{ppn}") for ppn in ppns]
    for ppn, proc in zip(ppns, procs):
        header = yield proc
        if header is None:
            ftl.record_media_loss(ppn, reason="activation-scan")
            casualties.append(ppn)
            continue
        fold(ppn, header)
    yield len(ppns) * replay_ns
    yield from limiter.pace(ftl.kernel.now - started)

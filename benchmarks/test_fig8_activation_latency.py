"""Benchmark: snapshot activation latency (paper Figure 8).

Runs the experiment once under pytest-benchmark (the measured quantity
is simulator wall-clock; the experiment's own results are virtual-time
rows saved to results/ and asserted against the paper's shape).
"""

from repro.bench import exp_fig8


def test_fig8_activation_latency(benchmark):
    result = benchmark.pedantic(exp_fig8, rounds=1, iterations=1)
    print()
    print(result.render())
    result.save()
    assert result.passed(), "\n".join(
        check.render() for check in result.failures())

"""Benchmark: memory overheads of activation (paper Table 3).

Runs the experiment once under pytest-benchmark (the measured quantity
is simulator wall-clock; the experiment's own results are virtual-time
rows saved to results/ and asserted against the paper's shape).
"""

from repro.bench import exp_table3


def test_table3_activation_memory(benchmark):
    result = benchmark.pedantic(exp_table3, rounds=1, iterations=1)
    print()
    print(result.render())
    result.save()
    assert result.passed(), "\n".join(
        check.render() for check in result.failures())

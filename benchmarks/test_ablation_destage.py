"""Benchmark: destaging snapshots to archival storage (paper §7 extension).

Runs the experiment once under pytest-benchmark (the measured quantity
is simulator wall-clock; the experiment's own results are virtual-time
rows saved to results/ and asserted against the expected shape).
"""

from repro.bench import exp_ablation_destage


def test_ablation_destage(benchmark):
    result = benchmark.pedantic(exp_ablation_destage, rounds=1, iterations=1)
    print()
    print(result.render())
    result.save()
    assert result.passed(), "\n".join(
        check.render() for check in result.failures())

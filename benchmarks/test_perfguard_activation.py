"""Benchmark: activation fast-path assertions (fig8-style microbench).

Runs the activation guard workload — one fig8-shaped device, the same
early snapshot activated cold-full, cold-selective, and warm — and
asserts the acceleration layer actually engaged: segments were skipped
(not merely that wall-clock moved), the warm re-activation rode the
delta rescan, and the simulated-time speedups clear the guard floors
(>= 5x warm, >= 2x cold selective).  A regression that silently turns
every activation back into a whole-log scan fails here before it shows
up in Figure 8 shapes.
"""

from repro.bench.activation_guard import (
    COLD_SPEEDUP_FLOOR,
    WARM_SPEEDUP_FLOOR,
    run,
)


def test_activation_fast_paths_engage(benchmark):
    report = benchmark.pedantic(run, args=(True,), rounds=1, iterations=1)
    assert report["full"]["mode"] == "full"
    assert report["selective"]["mode"] == "selective"
    assert report["warm"]["mode"] == "delta"
    assert report["selective"]["segments_skipped"] > 0
    assert report["warm"]["segments_skipped"] > 0
    assert report["warm"]["pages_scanned"] < report["full"]["pages_scanned"]
    assert (report["full"]["entries"] == report["selective"]["entries"]
            == report["warm"]["entries"])
    assert report["warm_speedup"] >= WARM_SPEEDUP_FLOOR, (
        f"warm delta speedup collapsed to {report['warm_speedup']:.1f}x")
    assert report["cold_speedup"] >= COLD_SPEEDUP_FLOOR, (
        f"selective speedup collapsed to {report['cold_speedup']:.1f}x")
    assert report["passed"], report["checks"]

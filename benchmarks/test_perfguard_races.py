"""Benchmark: race-instrumentation overhead floor (PR 8 perfguard).

The data-path ``races.note`` guards must be free when ``REPRO_RACES``
is unset: the estimated disabled-path cost (guard-site count times the
measured per-check price, a deliberate over-estimate) has to stay
under 5% of the fig12 wall clock.  The guard-site count being nonzero
is asserted too — zero would mean the instrumentation silently fell
out of the write path and the detector is blind.
"""

from repro.bench.races_guard import OVERHEAD_CEILING, run


def test_disabled_race_instrumentation_is_free(benchmark):
    report = benchmark.pedantic(run, kwargs={"smoke": True, "rounds": 2},
                                rounds=1, iterations=1)
    assert report["guard_sites"] > 0, \
        "fig12 never evaluated a races.note guard: instrumentation gone"
    assert report["overhead_ratio"] < OVERHEAD_CEILING, (
        f"disabled-path overhead estimate "
        f"{report['overhead_ratio'] * 100:.2f}% exceeds "
        f"{OVERHEAD_CEILING * 100:.0f}% of fig12 "
        f"({report['disabled_s']:.3f}s)")
    assert report["passed"]

"""Benchmark: incremental replication floor (5%-dirty microbench).

Runs the replication guard workload — one source, a full ``0 ->
target`` send and a chained ``0 -> base -> target`` incremental send —
and asserts the incremental path actually engaged: the planner ran in
delta mode against the epoch-summary index, segments were skipped, the
stream carried only the dirty blocks, both sinks serve byte-identical
content, and the simulated-time speedup clears the >= 10x floor.  A
regression that silently turns every incremental send back into a full
scan-and-copy fails here before it shows up in transfer times.
"""

from repro.bench.replicate_guard import INCREMENTAL_SPEEDUP_FLOOR, run


def test_incremental_replication_floor(benchmark):
    report = benchmark.pedantic(run, args=(True,), rounds=1, iterations=1)
    assert report["incremental"]["mode"] == "delta"
    assert report["incremental"]["segments_skipped"] > 0
    assert (report["incremental"]["extent_total"]
            == report["workload"]["dirty"])
    assert report["full"]["extent_total"] == report["workload"]["span"]
    assert (report["incremental"]["pages_scanned"]
            < report["full"]["pages_scanned"])
    assert report["checks"]["same_target_content"]
    assert report["incremental_speedup"] >= INCREMENTAL_SPEEDUP_FLOOR, (
        f"incremental speedup collapsed to "
        f"{report['incremental_speedup']:.1f}x")
    assert report["passed"], report["checks"]

"""Benchmark: read latency during rate-limited activation (paper Figure 9).

Runs the experiment once under pytest-benchmark (the measured quantity
is simulator wall-clock; the experiment's own results are virtual-time
rows saved to results/ and asserted against the paper's shape).
"""

from repro.bench import exp_fig9


def test_fig9_activation_interference(benchmark):
    result = benchmark.pedantic(exp_fig9, rounds=1, iterations=1)
    print()
    print(result.render())
    result.save()
    assert result.passed(), "\n".join(
        check.render() for check in result.failures())

"""Benchmark: flash-resident map memory + hot-path assertions.

Runs the mapcache guard workload — the same cached configuration on an
8x-larger device, plus a fig12-style hot-working-set mix against the
all-RAM map — and asserts the bounded-RAM promise holds: residency
never exceeds the page budget, total map RAM stays within the declared
byte budget at both device sizes (only the GTD grows with the device),
and the hot path pays no more than the guard floor for the indirection
(>= 0.9x all-RAM throughput, hit rate at the cache's steady state).
"""

from repro.bench.mapcache_guard import (
    BUDGET_PAGES,
    HIT_RATE_FLOOR,
    THROUGHPUT_FLOOR,
    run,
)


def test_map_ram_stays_bounded_and_hot_path_fast(benchmark):
    report = benchmark.pedantic(run, args=(True,), rounds=1, iterations=1)
    memory = report["memory"]
    for size in ("small", "medium"):
        probe = memory[size]
        assert probe["resident_pages"] <= BUDGET_PAGES, (size, probe)
        assert probe["memory_bytes"] <= probe["declared_budget_bytes"], (
            f"{size}: map RAM {probe['memory_bytes']} exceeds declared "
            f"budget {probe['declared_budget_bytes']}")
    assert memory["medium"]["memory_bytes"] * 2 <= memory["ram_medium_bytes"]
    hot = report["hot"]
    assert hot["cached"]["map"]["hit_rate"] >= HIT_RATE_FLOOR, (
        f"hot-set hit rate collapsed to {hot['cached']['map']['hit_rate']}")
    assert hot["throughput_ratio"] >= THROUGHPUT_FLOOR, (
        f"hot-set throughput fell to "
        f"{hot['throughput_ratio']:.3f}x of the all-RAM map")
    assert report["passed"], report["checks"]

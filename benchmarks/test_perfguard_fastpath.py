"""Benchmark: perfguard fast-path assertions.

Times a snapshot-aware cleaner pass and an activation scan via the
perfguard suite, and asserts the word-level fast paths actually carried
them: the ``word_*`` counters must advance and ``bit_fallback`` — which
only the naive per-bit reference increments — must stay at zero.  A
production code path regressing to per-bit work fails here before it
shows up as wall-clock drift.
"""

from repro.bench.perfguard import (
    bench_activation_scan,
    bench_bitmap_count,
    bench_bitmap_merge,
    bench_cleaner_pass,
)


def test_cleaner_pass_uses_word_fast_paths(benchmark):
    report = benchmark.pedantic(bench_cleaner_pass, rounds=1, iterations=1)
    assert report["segments_cleaned"] > 0
    counters = report["counters"]
    assert counters["bit_fallback"] == 0, (
        "cleaner pass fell back to per-bit work: "
        f"{counters['bit_fallback']} bit ops")
    assert counters["word_merge"] > 0
    assert counters["word_count"] > 0
    assert counters["word_iter"] > 0
    assert report["fast_path_only"]


def test_activation_scan_uses_word_fast_paths(benchmark):
    report = benchmark.pedantic(bench_activation_scan, rounds=1, iterations=1)
    assert report["counters"]["bit_fallback"] == 0
    assert report["fast_path_only"]


def test_word_engine_beats_naive_reference(benchmark):
    merge = benchmark.pedantic(bench_bitmap_merge, args=(True,),
                               rounds=1, iterations=1)
    count = bench_bitmap_count(smoke=True)
    assert merge["speedup"] >= 5.0, f"merge speedup {merge['speedup']:.1f}x"
    assert count["speedup"] >= 5.0, f"count speedup {count['speedup']:.1f}x"

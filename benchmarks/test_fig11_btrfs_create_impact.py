"""Benchmark: snapshot-create impact vs disk-optimized baseline (paper Figure 11).

Runs the experiment once under pytest-benchmark (the measured quantity
is simulator wall-clock; the experiment's own results are virtual-time
rows saved to results/ and asserted against the paper's shape).
"""

from repro.bench import exp_fig11


def test_fig11_btrfs_create_impact(benchmark):
    result = benchmark.pedantic(exp_fig11, rounds=1, iterations=1)
    print()
    print(result.render())
    result.save()
    assert result.passed(), "\n".join(
        check.render() for check in result.failures())

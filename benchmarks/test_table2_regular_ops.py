"""Benchmark: regular read/write operations, vanilla vs ioSnap (paper Table 2).

Runs the experiment once under pytest-benchmark (the measured quantity
is simulator wall-clock; the experiment's own results are virtual-time
rows saved to results/ and asserted against the paper's shape).
"""

from repro.bench import exp_table2


def test_table2_regular_ops(benchmark):
    result = benchmark.pedantic(exp_table2, rounds=1, iterations=1)
    print()
    print(result.render())
    result.save()
    assert result.passed(), "\n".join(
        check.render() for check in result.failures())

"""Benchmark: parallel log-head saturation regression guard.

Runs the channel sweep (1/2/4/8 channels over a fixed 8-die array)
with concurrent closed-loop writers and asserts the multi-queue data
path actually scales: 4 channels must deliver >= 3x the single-channel
write throughput (the PR's acceptance floor), the other sweep points
must clear their own floors, and the striped allocator must keep the
per-head append totals balanced.  A regression that re-serializes the
heads — a global allocator lock, a collapsed head count, a queue that
stopped overlapping dies — fails here before it shows up in any
paper-figure shape.
"""

from repro.bench.parallel_guard import BALANCE_FLOOR, SPEEDUP_FLOORS, run


def test_parallel_heads_scale_with_channels(benchmark):
    report = benchmark.pedantic(run, args=(True,), rounds=1, iterations=1)
    speedups = report["speedups"]
    for channels, floor in SPEEDUP_FLOORS.items():
        assert speedups[str(channels)] >= floor, (
            f"{channels}-channel speedup collapsed to "
            f"{speedups[str(channels)]:.2f}x (floor {floor}x)")
    for channels, row in report["rows"].items():
        assert row["user_heads"] == int(channels)
        if row["user_heads"] > 1:
            assert row["stripe_balance"] >= BALANCE_FLOOR, (
                f"{channels}-channel head balance {row['stripe_balance']:.2f}"
                f" below {BALANCE_FLOOR}")
    assert report["passed"], report["checks"]

"""Benchmark: crash-recovery mount time (supplemental; paper §5.5
describes the mechanism but does not measure it).

Runs the experiment once under pytest-benchmark (the measured quantity
is simulator wall-clock; the experiment's own results are virtual-time
rows saved to results/ and asserted against the expected shape).
"""

from repro.bench import exp_recovery_time


def test_supplemental_recovery_time(benchmark):
    result = benchmark.pedantic(exp_recovery_time, rounds=1, iterations=1)
    print()
    print(result.render())
    result.save()
    assert result.passed(), "\n".join(
        check.render() for check in result.failures())

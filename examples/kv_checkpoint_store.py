#!/usr/bin/env python3
"""A tiny key-value store with snapshot-backed checkpoints.

Shows how an application stacks on the reproduction's layers:

- :class:`ByteVolume` turns the block device into a byte-addressable
  volume (read-modify-write under the hood);
- a fixed-slot KV store lives on the volume;
- ioSnap snapshots give the store O(1) *checkpoints* with instant
  creation and rollback-by-activation — no write-ahead log, no
  double-buffering, because the FTL underneath never overwrites data.

Run: ``python examples/kv_checkpoint_store.py``
"""

import struct

from repro import ByteVolume, IoSnapDevice, Kernel

SLOT_SIZE = 64
KEY_SIZE = 16
VALUE_SIZE = SLOT_SIZE - KEY_SIZE - 4   # u32 length prefix
SLOTS = 256


class TinyKV:
    """Fixed-slot hash table on a byte volume.  Deliberately naive."""

    def __init__(self, volume: ByteVolume) -> None:
        self.volume = volume

    def _slot_offset(self, key: bytes) -> int:
        # Linear probing from the key's hash slot.
        index = sum(key) % SLOTS
        for probe in range(SLOTS):
            offset = ((index + probe) % SLOTS) * SLOT_SIZE
            stored = self.volume.pread(offset, KEY_SIZE)
            if stored == key.ljust(KEY_SIZE, b"\x00") or not any(stored):
                return offset
        raise RuntimeError("store full")

    def put(self, key: str, value: str) -> None:
        kb = key.encode()[:KEY_SIZE]
        vb = value.encode()[:VALUE_SIZE]
        offset = self._slot_offset(kb)
        record = (kb.ljust(KEY_SIZE, b"\x00")
                  + struct.pack("<I", len(vb)) + vb)
        self.volume.pwrite(offset, record)

    def get(self, key: str) -> str:
        kb = key.encode()[:KEY_SIZE]
        offset = self._slot_offset(kb)
        raw = self.volume.pread(offset, SLOT_SIZE)
        if not any(raw[:KEY_SIZE]):
            raise KeyError(key)
        (length,) = struct.unpack_from("<I", raw, KEY_SIZE)
        return raw[KEY_SIZE + 4:KEY_SIZE + 4 + length].decode()


def main() -> None:
    kernel = Kernel()
    device = IoSnapDevice.create(kernel)
    store = TinyKV(ByteVolume(device))

    store.put("alice", "balance=100")
    store.put("bob", "balance=250")
    checkpoint = device.snapshot_create("before-batch")
    print(f"checkpoint {checkpoint.name!r} taken "
          f"(cost: {device.snap_metrics.create_latencies_ns[-1] / 1000:.0f} "
          "us of device time)")

    # A "batch job" goes wrong halfway through.
    store.put("alice", "balance=0")
    store.put("carol", "balance=9999999")   # oops: corrupt record
    print("after the bad batch:   alice ->", store.get("alice"))

    # Peek at the checkpoint, then roll the whole volume back to it.
    view = device.snapshot_activate("before-batch")
    frozen = TinyKV(ByteVolume(view))
    print("in the checkpoint:     alice ->", frozen.get("alice"))
    view.deactivate()

    from repro.core import snapshot_rollback
    report = snapshot_rollback(device, "before-batch")
    print(f"rollback: {report['rewritten']} blocks rewritten, "
          f"{report['trimmed']} trimmed, "
          f"{report['skipped_identical']} already identical")
    try:
        store.get("carol")
        restored_carol = "still present (!)"
    except KeyError:
        restored_carol = "gone, as expected"
    print("after rollback:        alice ->", store.get("alice"),
          "| carol:", restored_carol)
    assert store.get("alice") == "balance=100"
    print("done.")


if __name__ == "__main__":
    main()

#!/usr/bin/env python3
"""Tuning the activation rate limiter (the paper's Figure 9 knob).

ioSnap exposes a duty-cycle knob — "for every x µs of activation work,
sleep y ms" — that trades snapshot activation time against foreground
latency.  This example sweeps the knob on a fixed workload and prints
the trade-off curve so an operator can pick a point.

Run: ``python examples/rate_limit_tuning.py``
"""

from repro import DutyCycleLimiter, IoSnapDevice, Kernel, NullLimiter
from repro.bench.configs import bench_iosnap_config, bench_nand, medium_geometry
from repro.sim.stats import LatencyRecorder, NS_PER_MS, NS_PER_US
from repro.workloads import io_stream, random_reads_over, random_writes
from repro.workloads.runner import run_stream


def run_point(work_us, sleep_ms):
    """One sweep point: returns (p95 read latency during, activation ms)."""
    kernel = Kernel()
    device = IoSnapDevice.create(kernel, bench_nand(medium_geometry()),
                                 bench_iosnap_config())
    span = 1500
    run_stream(kernel, device, random_writes(750, span, seed=1))
    device.snapshot_create("s1")
    run_stream(kernel, device, random_writes(750, span, seed=2))

    latency = LatencyRecorder("reads")
    stop = [False]
    reader = kernel.spawn(
        io_stream(kernel, device, random_reads_over(5000, span, seed=3),
                  latency=latency, stop_flag=stop), name="reader")

    window = {}

    def orchestrate():
        yield 20 * NS_PER_MS
        if work_us is None:
            limiter = NullLimiter()
        else:
            limiter = DutyCycleLimiter.from_paper_knob(kernel, work_us,
                                                       sleep_ms)
        window["start"] = kernel.now
        view = yield from device.snapshot_activate_proc("s1", limiter)
        window["end"] = kernel.now
        yield from device.snapshot_deactivate_proc(view)
        stop[0] = True

    kernel.run_process(orchestrate())
    during = latency.between(window["start"], window["end"])
    baseline = latency.between(0, window["start"])
    return (baseline.mean() / NS_PER_US,
            during.pct(95) / NS_PER_US,
            (window["end"] - window["start"]) / NS_PER_MS)


def main() -> None:
    points = [
        ("unthrottled", None, None),
        ("400us / 2ms", 400, 2),
        ("200us / 2ms", 200, 2),
        ("100us / 2ms", 100, 2),
        ("50us / 2ms", 50, 2),
        ("50us / 5ms", 50, 5),
    ]
    print(f"{'knob':>14}  {'baseline us':>12}  {'p95 during us':>14}  "
          f"{'x baseline':>10}  {'activation ms':>14}")
    for name, work_us, sleep_ms in points:
        baseline, p95, act_ms = run_point(work_us, sleep_ms)
        print(f"{name:>14}  {baseline:>12.1f}  {p95:>14.1f}  "
              f"{p95 / baseline:>10.2f}  {act_ms:>14.1f}")
    print("\nPick the knob whose foreground impact you can tolerate;"
          "\nactivation time is the price (paper §5.6: 'users need to"
          "\ntrade-off latency and bandwidth for faster snapshot"
          " activation').")


if __name__ == "__main__":
    main()

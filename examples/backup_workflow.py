#!/usr/bin/env python3
"""Backup workflow: fine-grained change tracking on a busy "database".

The paper's motivation (§3.1): flash fills fast (a 30K-IOPS database
workload fills a 1 TB device in about an hour), so snapshots must be
cheap enough to take *frequently*.  This example simulates that
pattern:

- a database-style random-write workload runs continuously;
- a snapshot is taken every "5 minutes" of simulated time (scaled);
- the machine then crashes mid-workload;
- after crash recovery, the operator activates the last good snapshot
  and restores corrupted records from it.

Run: ``python examples/backup_workflow.py``
"""

import random

from repro import IoSnapDevice, Kernel
from repro.nand import NandConfig, NandGeometry

PAGE = 4096
RECORDS = 600
ROUNDS = 4
WRITES_PER_ROUND = 500


def record_bytes(record: int, version: int) -> bytes:
    return f"record={record} version={version}".encode()


def main() -> None:
    kernel = Kernel()
    geometry = NandGeometry(page_size=PAGE, pages_per_block=64,
                            blocks_per_die=64, dies=8, channels=4)
    device = IoSnapDevice.create(kernel, NandConfig(geometry=geometry))
    rng = random.Random(2014)

    # Seed the database.
    versions = {}
    for record in range(RECORDS):
        device.write(record, record_bytes(record, 0))
        versions[record] = 0
    print(f"seeded {RECORDS} records")

    # Busy workload + periodic snapshots.
    snapshots = []
    version_history = []
    for round_no in range(1, ROUNDS + 1):
        for _ in range(WRITES_PER_ROUND):
            record = rng.randrange(RECORDS)
            versions[record] += 1
            device.write(record, record_bytes(record, versions[record]))
        snap = device.snapshot_create(f"backup-round-{round_no}")
        snapshots.append(snap)
        version_history.append(dict(versions))
        print(f"round {round_no}: snapshot {snap.name!r} taken at "
              f"t={kernel.now / 1e9:.3f}s "
              f"(create cost "
              f"{device.snap_metrics.create_latencies_ns[-1] / 1000:.0f} us)")

    # Some more writes... and then the power goes out.
    for _ in range(200):
        record = rng.randrange(RECORDS)
        versions[record] += 1
        device.write(record, record_bytes(record, versions[record]))
    device.crash()
    print("\n*** power failure ***\n")

    # Reopen: crash recovery rebuilds the active state AND the snapshot
    # tree purely from the log.
    recovered = IoSnapDevice.open(kernel, device.nand)
    names = [s.name for s in recovered.snapshots()]
    print(f"recovered device; snapshots found on media: {names}")
    assert names == [s.name for s in snapshots]

    # The active data survived the crash too (writes were on the log).
    sample = recovered.read(0).rstrip(b"\x00").decode()
    print(f"active record 0 after recovery: {sample!r}")

    # Disaster recovery: activate the last backup and restore a
    # "corrupted" record range from it.
    view = recovered.snapshot_activate(snapshots[-1].name)
    print(f"activated {snapshots[-1].name!r} "
          f"({len(view.map)} blocks, scan {view.scan_ns / 1e6:.1f} ms)")
    restored = 0
    expected = version_history[-1]
    for record in range(0, 50):
        frozen = view.read(record)
        assert frozen.rstrip(b"\x00") == record_bytes(record,
                                                      expected[record])
        recovered.write(record, frozen)
        restored += 1
    view.deactivate()
    print(f"restored {restored} records from the backup")

    # Retention policy: keep only the last two backups.
    for snap in snapshots[:-2]:
        recovered.snapshot_delete(snap.name)
    print(f"pruned old backups; remaining: "
          f"{[s.name for s in recovered.snapshots()]}")
    print(f"space the cleaner can now reclaim is freed lazily; "
          f"segments cleaned so far: {recovered.cleaner.segments_cleaned}")
    print("done.")


if __name__ == "__main__":
    main()

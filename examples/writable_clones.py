#!/usr/bin/env python3
"""Writable snapshot clones: dev/test against production data.

The paper's design (§5.6) supports writable activations — "a new
writable device which resembles the snapshot (but never overwrites the
snapshot)" — though its prototype only shipped read-only ones.  This
reproduction implements both; this example uses the writable extension
to spin up a throwaway clone of a "production" volume, mutate it, and
show that neither production nor the snapshot notices.

Run: ``python examples/writable_clones.py``
"""

from repro import IoSnapConfig, IoSnapDevice, Kernel


def main() -> None:
    kernel = Kernel()
    device = IoSnapDevice.create(
        kernel, config=IoSnapConfig(writable_activations=True))

    # Production data.
    for lba in range(32):
        device.write(lba, f"prod row {lba}".encode())
    snap = device.snapshot_create("nightly")
    print(f"production volume: 32 rows; snapshot {snap.name!r} taken")

    # Production keeps changing after the snapshot.
    for lba in range(8):
        device.write(lba, f"prod row {lba} (updated)".encode())

    # Spin up a writable clone from the snapshot and run a destructive
    # "test migration" on it.
    clone = device.snapshot_activate("nightly")
    assert clone.writable
    print(f"writable clone active on fork epoch {clone.epoch}")
    for lba in range(32):
        original = clone.read(lba).rstrip(b"\x00").decode()
        clone.write(lba, f"{original} + MIGRATED".encode())
    migrated = clone.read(5).rstrip(b"\x00").decode()
    print(f"clone row 5 after test migration: {migrated!r}")

    # Production and the snapshot are untouched.
    prod = device.read(5).rstrip(b"\x00").decode()
    print(f"production row 5:                 {prod!r}")
    assert "MIGRATED" not in prod

    clone.deactivate()
    print("clone discarded (its fork epoch becomes garbage for the cleaner)")

    # The snapshot still shows the original, pre-update rows.
    check = device.snapshot_activate("nightly")
    frozen = check.read(5).rstrip(b"\x00").decode()
    print(f"snapshot row 5 (re-activated):    {frozen!r}")
    assert frozen == "prod row 5"
    check.deactivate()
    print("done.")


if __name__ == "__main__":
    main()

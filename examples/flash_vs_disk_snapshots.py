#!/usr/bin/env python3
"""Flash-native vs disk-optimized snapshots, side by side (paper §6.4).

Runs the same workload — preload, then random writes with a snapshot
every N writes — on ioSnap and on the Btrfs-like CoW baseline, and
reports each system's deviation from its own baseline latency plus its
bandwidth trend.  A condensed, narrated version of Figures 11 and 12.

Run: ``python examples/flash_vs_disk_snapshots.py``
"""

from repro import BtrfsConfig, BtrfsLikeDevice, IoSnapDevice, Kernel
from repro.bench.configs import bench_iosnap_config, bench_nand, large_geometry
from repro.bench.experiments_baseline import (
    _run_with_periodic_snapshots,
    _window_means,
)
from repro.sim.stats import NS_PER_MS, NS_PER_US


def report(name: str, run: dict) -> None:
    means = _window_means(run["latency"], 20 * NS_PER_MS)
    median = sorted(means)[len(means) // 2]
    worst = max(means)
    series = run["bandwidth"].series(name)
    ys = series.ys[:-1]
    quarter = max(1, len(ys) // 4)
    first = sum(ys[:quarter]) / quarter
    last = sum(ys[-quarter:]) / quarter
    print(f"{name}:")
    print(f"  snapshots taken:        {len(run['snapshot_times'])}")
    print(f"  typical write latency:  {median / NS_PER_US:.0f} us "
          f"(20 ms window median)")
    print(f"  worst window:           {worst / NS_PER_US:.0f} us "
          f"({worst / median:.2f}x baseline)")
    print(f"  bandwidth trend:        {first:.2f} -> {last:.2f} MB/s "
          f"({last / first:.2f}x)")
    print()


def main() -> None:
    preload, writes, snaps = 5000, 5000, 8
    every = writes // (snaps + 1)

    kernel = Kernel()
    iosnap = IoSnapDevice.create(kernel, bench_nand(large_geometry()),
                                 bench_iosnap_config())
    io_run = _run_with_periodic_snapshots(
        iosnap, preload, writes, preload,
        snapshot_every_writes=every, max_snapshots=snaps)

    kernel2 = Kernel()
    btrfs = BtrfsLikeDevice.create(kernel2, bench_nand(large_geometry()),
                                   BtrfsConfig(commit_interval_writes=32))
    bt_run = _run_with_periodic_snapshots(
        btrfs, preload, writes, preload,
        snapshot_every_writes=every, max_snapshots=snaps)

    print("Same workload, same simulated flash, two snapshot designs:\n")
    report("ioSnap (FTL-native snapshots)", io_run)
    report("Btrfs-like (shadowing CoW B-tree)", bt_run)
    print("The FTL was already remap-on-write, so retaining snapshots is")
    print("nearly free on the foreground path; the disk-optimized design")
    print("pays metadata CoW on every post-snapshot write and its commit")
    print("cost grows as snapshots pin more extents.")


if __name__ == "__main__":
    main()

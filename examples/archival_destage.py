#!/usr/bin/env python3
"""Destaging snapshots to archival storage (paper §7).

"Keeping snapshots on flash for prolonged durations is not necessarily
the best use of the SSD."  This example runs the full lifecycle:

1. take nightly snapshots of a working volume,
2. destage the oldest one to a (simulated) archival disk — rate-limited
   so foreground I/O stays smooth — and delete it from flash,
3. watch the flash space come back,
4. months later, restore the archived image after a data-loss event.

Run: ``python examples/archival_destage.py``
"""

from repro import DutyCycleLimiter, IoSnapConfig, IoSnapDevice, Kernel
from repro.core import ArchiveTarget, destage_snapshot, restore_snapshot


def main() -> None:
    kernel = Kernel()
    device = IoSnapDevice.create(
        kernel, config=IoSnapConfig(selective_scan=True))
    archive = ArchiveTarget(kernel, write_mb_per_s=150.0)

    # A week of nightly snapshots over a changing volume.
    for night in range(3):
        for lba in range(80):
            device.write(lba, f"night{night}-row{lba}".encode())
        device.snapshot_create(f"nightly-{night}")
    print("snapshot tree:")
    print(device.tree.render())

    info = device.info()
    print(f"\nflash: {info['mapped_lbas']} active blocks, "
          f"{info['snapshots']['live']} snapshots retained")

    # Destage the oldest snapshot; the duty-cycle limiter keeps the
    # scan from disturbing foreground I/O.
    limiter = DutyCycleLimiter.from_paper_knob(kernel, work_us=200,
                                               sleep_ms=1)
    report = destage_snapshot(device, "nightly-0", archive,
                              limiter=limiter, delete_after=True)
    print(f"\ndestaged {report['snapshot']!r}: {report['blocks']} blocks, "
          f"{report['bytes'] / 1024:.0f} KiB in "
          f"{report['duration_ns'] / 1e6:.1f} ms of device time")
    print(f"archive now holds: {archive.images()}")
    print(f"snapshots on flash: "
          f"{[s.name for s in device.snapshots()]}")

    # Disaster: the volume is ruined; restore from the archive.
    for lba in range(80):
        device.write(lba, b"CORRUPTED")
    print("\n*** volume corrupted; restoring from archive ***")
    result = restore_snapshot(device, "nightly-0", archive)
    print(f"restored {result['blocks']} blocks in "
          f"{result['duration_ns'] / 1e6:.1f} ms")
    sample = device.read(7).rstrip(bytes(1)).decode()
    print(f"row 7 after restore: {sample!r}")
    assert sample == "night0-row7"
    print("done.")


if __name__ == "__main__":
    main()

#!/usr/bin/env python3
"""Quickstart: create, use, and restore flash-native snapshots.

Walks the core ioSnap lifecycle on a small simulated device:

1. write data,
2. take a snapshot (O(1): one note on the log),
3. keep writing — the snapshot is isolated,
4. activate the snapshot (the deliberate slow path) and read it,
5. inspect what all of that cost in device time.

Run: ``python examples/quickstart.py``
"""

from repro import IoSnapDevice, Kernel


def main() -> None:
    kernel = Kernel()
    device = IoSnapDevice.create(kernel)
    print(f"device: {device.num_lbas} logical blocks of "
          f"{device.block_size} bytes")

    # 1. Write some "files".
    for lba in range(16):
        device.write(lba, f"v1 contents of block {lba}".encode())
    print("wrote 16 blocks")

    # 2. Snapshot.  Note how little virtual time this takes — it is one
    # synchronous note appended to the log, independent of data volume.
    before = kernel.now
    snap = device.snapshot_create("golden")
    print(f"created snapshot {snap.name!r} in "
          f"{(kernel.now - before) / 1000:.0f} us of device time")

    # 3. Overwrite half the blocks; the snapshot is unaffected.
    for lba in range(8):
        device.write(lba, f"v2 CHANGED block {lba}".encode())
    print("overwrote blocks 0-7 on the active device")

    # 4. Activate: ioSnap reconstructs the snapshot's forward map by
    # scanning the log's out-of-band headers.
    view = device.snapshot_activate("golden")
    print(f"activated {snap.name!r}: scanned the log in "
          f"{view.scan_ns / 1e6:.2f} ms, rebuilt a "
          f"{len(view.map)}-entry map in {view.reconstruct_ns / 1e6:.2f} ms")

    active = device.read(3).rstrip(b"\x00").decode()
    frozen = view.read(3).rstrip(b"\x00").decode()
    print(f"block 3 on the active device: {active!r}")
    print(f"block 3 in the snapshot:      {frozen!r}")
    assert frozen.startswith("v1") and active.startswith("v2")

    # Restore one block from the snapshot, then let it go.
    device.write(3, view.read(3))
    view.deactivate()
    print(f"restored block 3: {device.read(3).rstrip(bytes(1))[:24]!r}...")

    print(f"total virtual device time: {kernel.now / 1e6:.2f} ms")
    print("done.")


if __name__ == "__main__":
    main()
